"""Command-line interface: regenerate the paper's headline numbers.

Usage::

    python -m repro blocksizes [--clock HZ] [--audio HZ] [--margin PCT]
    python -m repro verify
    python -m repro table1
    python -m repro fig8
    python -m repro utilization
    python -m repro schedule [--eta N]
    python -m repro analyze CONFIG.json
    python -m repro scenarios list
    python -m repro scenarios describe NAME
    python -m repro scenarios run NAME[?params] [--blocks N] [--json]
    python -m repro metrics [CONFIG.json | --scenario NAME] [--blocks N] [--json]
    python -m repro conformance [CONFIG.json | --scenario NAME] [--json] [--uncalibrated]
    python -m repro faults [CONFIG.json | --scenario NAME] [--plan PLAN.json] [--json]
    python -m repro reconfig [CONFIG.json | --scenario NAME] [--plan PLAN.json] [--json]
    python -m repro sweep SPEC.json [--workers N | --serial] [--out DIR]
    python -m repro sweep scenario://generated?seed=N --points K

Each subcommand prints one reproduced artefact; together they cover the
evaluation section.  `pytest benchmarks/ --benchmark-only -s` runs the full
harness with assertions.  ``metrics`` and ``conformance`` run the
cycle-level architecture simulation on a JSON system description and report
observed per-stream runtime metrics, respectively the observed-vs-bound
(Eq. 2–5) margins; ``conformance`` exits non-zero on any bound violation.
``faults`` replays a fault-injection plan and prints the recovery report;
``reconfig`` drives runtime reconfiguration — stream joins/leaves and
spare-tile failover — and checks the per-mode bounds, exiting non-zero on
unattributed violations or a transition-budget overrun.  ``sweep`` fans a
parameter-sweep spec out over worker processes (:mod:`repro.exp`) and
persists the merged results as ``BENCH_<name>.json``.

The simulation subcommands all take workloads from the **scenario
registry** (:mod:`repro.app.scenarios`): a positional ``CONFIG.json``
still describes a raw system, ``--scenario NAME[?params]`` references a
registered entry, and with neither the PAL decoder runs.  ``repro
scenarios`` lists, describes and runs registry entries directly, and
``repro sweep`` accepts a ``scenario://`` reference to fan a seeded
generated corpus through the executors, gating on conformance-clean
results.

The simulation subcommands are thin shells over :mod:`repro.api`
(``Scenario`` → ``RunResult``); ``--json`` output is the versioned
``repro.report`` envelope of :mod:`repro.core.config_io`, with the
historical top-level keys preserved.

Flag spelling is normalised across subcommands: the config is positional
(hidden ``--config``/``--params`` aliases accepted), the cycle cap is
``--max-cycles`` (hidden ``--cycles`` alias), work per stream is
``--blocks`` everywhere.  See README "CLI flag conventions".
"""

from __future__ import annotations

import argparse
import sys
from fractions import Fraction


def cmd_blocksizes(args: argparse.Namespace) -> int:
    from .app import PAPER_BLOCK_SIZES, pal_block_sizes

    # e.g. --margin 0.127 (percent) -> rate_margin = 1.00127
    margin = Fraction(1) + Fraction(int(round(args.margin * 10000)), 1_000_000)
    sizes = pal_block_sizes(
        audio_rate=args.audio, clock_hz=args.clock, rate_margin=margin
    )
    print(f"Algorithm-1 block sizes (audio {args.audio} Hz, clock {args.clock} Hz, "
          f"margin {args.margin}%):")
    for name, eta in sorted(sizes.items()):
        print(f"  η[{name}] = {eta}")
    print(f"paper: stage-1 {PAPER_BLOCK_SIZES['stage1']}, "
          f"stage-2 {PAPER_BLOCK_SIZES['stage2']} "
          "(reproduced exactly at --margin 0.127)")
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    from .app import pal_block_sizes, pal_gateway_system
    from .core import verify_system

    system = pal_gateway_system().with_block_sizes(pal_block_sizes())
    report = verify_system(system)
    print(report.summary())
    return 0 if report.ok else 1


def cmd_table1(args: argparse.Namespace) -> int:
    from .hwcost import paper_table1

    cmp = paper_table1()
    print(cmp.table())
    print(f"accelerator instances reduced by {cmp.accelerator_reduction_pct:.0f}%")
    return 0


def cmd_fig8(args: argparse.Namespace) -> int:
    from .dataflow import SDFGraph, min_capacity_for_liveness

    print("Fig. 8b: minimum buffer capacity vs block size (consumer drains 5)")
    for eta in range(1, 6):
        g = SDFGraph("fig8")
        g.add_actor("vA", 1)
        g.add_actor("vB", 5)
        g.add_edge("vA", "vB", production=eta, consumption=5, name="ch")
        alpha = min_capacity_for_liveness(g, "ch")
        print(f"  η={eta}: α={alpha}")
    print("paper: 5, 6, 7, 8, 5 — non-monotone")
    return 0


def cmd_utilization(args: argparse.Namespace) -> int:
    from .app import pal_block_sizes, pal_gateway_system
    from .core import analyze_utilization

    system = pal_gateway_system().with_block_sizes(pal_block_sizes())
    u = analyze_utilization(system)
    print(f"round length            : {u.round_length} cycles")
    print(f"gateway per-sample copy : {float(u.gateway_copy_fraction):.1%}")
    print(f"reconfiguration R_s     : {float(u.reconfig_fraction):.1%}")
    print(f"data movement           : {float(u.data_processing_fraction):.1%} "
          "(paper ≈5%)")
    print(f"state management        : {float(u.state_management_fraction):.1%} "
          "(paper ≈95%)")
    return 0


def cmd_schedule(args: argparse.Namespace) -> int:
    from .core import (
        AcceleratorSpec,
        GatewaySystem,
        StreamSpec,
        build_stream_csdf,
        parametric_schedule,
    )
    from .dataflow import admissible_schedule

    system = GatewaySystem(
        accelerators=(AcceleratorSpec("acc", 2),),
        streams=(StreamSpec("s", Fraction(1, 100), 20, block_size=args.eta),),
        entry_copy=5,
        exit_copy=1,
    )
    print(parametric_schedule(system, "s").describe())
    graph, _info = build_stream_csdf(
        system, "s", producer_period=1, consumer_period=1,
        alpha0=2 * args.eta, alpha3=2 * args.eta, prequeued=2 * args.eta,
    )
    sched = admissible_schedule(graph, iterations=1)
    print()
    print(sched.render())
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    """Full analysis of a user-supplied gateway system (JSON config)."""
    from pathlib import Path

    from .core import (
        analyze_utilization,
        compute_block_sizes,
        gamma,
        load_system,
        sample_latency_bound,
        sharing_load,
        tau_hat,
        verify_system,
    )

    system = load_system(Path(args.config).read_text())
    load = sharing_load(system)
    print(f"aggregate load c0·Σμ = {float(load):.4f}")
    if load >= 1:
        print("INFEASIBLE: the shared chain cannot serve these rates")
        return 1
    result = compute_block_sizes(system, backend=args.backend)
    assigned = system.with_block_sizes(result.block_sizes)
    print("\nblock sizes (Algorithm 1):")
    for name, eta in result.block_sizes.items():
        print(f"  η[{name}] = {eta}   τ̂ = {tau_hat(assigned, name)}  "
              f"L̂ = {float(sample_latency_bound(assigned, name)):.0f} cycles")
    print(f"rotation γ̂ = {gamma(assigned, assigned.streams[0].name)} cycles")
    u = analyze_utilization(assigned)
    print(f"gateway copy {float(u.gateway_copy_fraction):.1%}, "
          f"reconfig {float(u.reconfig_fraction):.1%}")
    report = verify_system(assigned)
    print()
    print(report.summary())
    return 0 if report.ok else 1


def _scenario_from_args(args: argparse.Namespace):
    """Resolve the positional config / ``--scenario`` flag into a Scenario.

    Precedence: an explicit ``--scenario NAME[?params]`` reference wins, a
    positional system-JSON path is next, and with neither the registry's
    ``pal_decoder`` entry is the default — so the bare subcommands run the
    paper's own workload.
    """
    from .api import Scenario, load_scenario

    ref = getattr(args, "scenario", None)
    if ref is not None:
        return Scenario.from_registry(ref)
    if args.config is not None:
        return load_scenario(args.config)
    return Scenario.from_registry("pal_decoder")


def _build_result(args: argparse.Namespace, **extra):
    """Build the :class:`repro.api.Scenario` an args namespace describes.

    The single construction point all four simulation subcommands share —
    this is where the CLI is re-routed through the :mod:`repro.api` facade
    (``_simulated_run`` below remains as a deprecation shim).  ``--blocks``
    left unset keeps the scenario's own setting (4 for plain configs).
    """
    return _prepared_scenario(args, **extra).build()


def _prepared_scenario(args: argparse.Namespace, **extra):
    """The fully-configured Scenario for ``_build_result`` (pre-build)."""
    scenario = _scenario_from_args(args)
    if getattr(args, "blocks", None) is not None:
        scenario = scenario.with_blocks(args.blocks)
    scenario = scenario.with_backend(args.backend)
    if getattr(args, "max_cycles", None) is not None:
        scenario = scenario.with_max_cycles(args.max_cycles)
    for key, value in extra.items():
        scenario = getattr(scenario, f"with_{key}")(value)
    return scenario


def _simulated_run(args: argparse.Namespace, **kwargs):
    """Deprecated shim: pre-facade helper returning the raw SimulationRun.

    Kept for any external driver importing it; new code should build a
    :class:`repro.api.Scenario`.
    """
    import warnings

    warnings.warn(
        "repro.__main__._simulated_run is deprecated; use repro.api.Scenario",
        DeprecationWarning,
        stacklevel=2,
    )
    from .api import load_scenario

    scenario = load_scenario(args.config)
    if getattr(args, "blocks", None) is not None:
        scenario = scenario.with_blocks(args.blocks)
    scenario = scenario.with_backend(args.backend)
    if "max_cycles" in kwargs:
        scenario = scenario.with_max_cycles(kwargs.pop("max_cycles"))
    for key in ("faults", "spares", "watchdog", "admission"):
        if key in kwargs:
            scenario = getattr(scenario, f"with_{key}")(kwargs.pop(key))
    if kwargs:
        raise TypeError(f"unsupported simulation kwargs: {sorted(kwargs)}")
    return scenario.build().run


def cmd_metrics(args: argparse.Namespace) -> int:
    """Simulate a JSON gateway system and print per-stream runtime metrics."""
    import json

    from .core.params import ParameterError
    from .sim import metrics_table

    try:
        result = _build_result(args)
    except ParameterError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(result.report("metrics"), indent=2))
        return 0
    metrics = result.metrics()
    util = result.utilization()
    print(f"simulated {result.scenario.blocks} blocks/stream over "
          f"{result.horizon} cycles")
    print()
    print(metrics_table(metrics.values()))
    print()
    print(f"entry gateway: copy {util.copy:.1%}, reconfig {util.reconfig:.1%}, "
          f"poll {util.poll:.1%}, other {util.other:.1%} "
          f"({util.blocks_admitted} blocks admitted)")
    fp = result.run.fastpath()
    rings = ", ".join(
        f"{ring} {s['take_rate']:.1%} of {s['fast'] + s['slow']}"
        for ring, s in fp["rings"].items()
    )
    state = "on" if fp["enabled"] else "off (REPRO_NO_FASTPATH)"
    print(f"ring fast path {state}: {fp['take_rate']:.1%} of flits fused "
          f"({rings})")
    return 0


def cmd_conformance(args: argparse.Namespace) -> int:
    """Simulate a JSON gateway system; report observed-vs-bound margins."""
    import json

    from .core.params import ParameterError

    try:
        result = _build_result(args)
    except ParameterError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if result.reconfig is not None:
        # churn run: the static model's block sizes are stale after the
        # online re-solves — check each steady mode against its own model
        report = result.mode_conformance(calibrated=not args.uncalibrated).merged()
    else:
        report = result.conformance(calibrated=not args.uncalibrated)
    if args.json:
        print(json.dumps(
            result.report("conformance", calibrated=not args.uncalibrated),
            indent=2,
        ))
    else:
        which = "bare-model" if args.uncalibrated else "calibrated"
        print(f"simulated {result.scenario.blocks} blocks/stream over "
              f"{result.horizon} cycles; "
              f"checking against {which} Eq. 2–5 bounds")
        print()
        print(report.summary())
    return 0 if report.ok else 1


def _load_fault_plan(path: str):
    """Parse + validate a fault-plan JSON, or print a friendly error.

    Returns the :class:`~repro.sim.faults.FaultPlan`, or ``None`` after
    printing what was wrong (malformed JSON, unknown fault kind, missing
    fields) — the caller exits with status 2 instead of a traceback.
    """
    import json
    from pathlib import Path

    from .sim.faults import FAULT_KINDS, FaultError, FaultPlan

    try:
        text = Path(path).read_text()
    except OSError as exc:
        print(f"error: cannot read fault plan {path}: {exc}", file=sys.stderr)
        return None
    try:
        return FaultPlan.from_json(text)
    except json.JSONDecodeError as exc:
        print(f"error: {path} is not valid JSON: {exc}", file=sys.stderr)
        return None
    except FaultError as exc:
        print(f"error: invalid fault plan {path}: {exc}", file=sys.stderr)
        print(f"valid fault kinds: {', '.join(sorted(FAULT_KINDS))}",
              file=sys.stderr)
        return None


def cmd_faults(args: argparse.Namespace) -> int:
    """Simulate a JSON gateway system under a fault plan; report recovery."""
    import json

    from .core.params import ParameterError

    extra = {}
    if args.plan is not None:
        plan = _load_fault_plan(args.plan)
        if plan is None:
            return 2
        extra["faults"] = plan
    try:
        scenario = _prepared_scenario(args, **extra)
    except ParameterError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    plan = scenario.faults
    if not plan:
        print("error: no fault plan — give --plan PLAN.json, or a "
              "--scenario whose entry carries one (e.g. multi_mode)",
              file=sys.stderr)
        return 2
    result = scenario.build()
    run = result.run
    report = result.fault_report()
    if args.json:
        print(json.dumps(result.report("faults"), indent=2))
        return 0 if report["fully_attributed"] else 1
    print(f"simulated {scenario.blocks} blocks/stream over {run.horizon} "
          f"cycles under {len(plan)} fault spec(s), seed {plan.seed}")
    print()
    print(f"{len(report['injected'])} fault(s) fired:")
    for e in report["injected"]:
        detail = ", ".join(f"{k}={v}" for k, v in e.items()
                           if k not in ("time", "kind"))
        print(f"  cycle {e['time']:>8}  {e['kind']:<16} {detail}")
    print()
    print(f"{'stream':<12} {'blocks':>6} {'timeouts':>8} {'retries':>7} "
          f"{'rec cyc':>8} {'degraded':>8} {'outcome':>10}")
    for name, s in report["streams"].items():
        outcome = ("FAILED" if s["failed"]
                   else "recovered" if s["recovered"] else "clean")
        print(f"{name:<12} {s['blocks_done']:>6} {s['watchdog_timeouts']:>8} "
              f"{s['retries']:>7} {s['recovery_cycles']:>8} "
              f"{s['degraded_cycles']:>8} {outcome:>10}")
    print()
    attributed = run.attributed_conformance()
    print(attributed.summary())
    return 0 if attributed.fully_attributed else 1


def cmd_reconfig(args: argparse.Namespace) -> int:
    """Run a churn plan (joins/leaves/tile failures) with live reconfiguration."""
    import json

    from .core.params import ParameterError

    if args.blocks is None and args.scenario is None:
        args.blocks = 8  # historical reconfig default for plain configs
    extra = {"spares": args.spares}
    if args.plan is not None:
        plan = _load_fault_plan(args.plan)
        if plan is None:
            return 2
        extra["faults"] = plan
    try:
        scenario = _prepared_scenario(args, **extra)
    except ParameterError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    plan = scenario.faults
    if not plan and not args.spares:
        print("error: no churn plan — give --plan PLAN.json, --spares N, or "
              "a --scenario whose entry carries churn (e.g. multi_mode)",
              file=sys.stderr)
        return 2
    result = scenario.build()
    run = result.run
    rm = run.reconfig
    if rm is None:
        print("plan has no stream joins/leaves and no spares were "
              "provisioned; nothing to reconfigure (use --spares to arm "
              "tile-failure failover)", file=sys.stderr)
        return 2

    modal = run.mode_conformance()
    attributed = run.attributed_conformance()
    ok_budget = all(t.within_budget for t in rm.accepted)

    if args.json:
        print(json.dumps(result.report("reconfig"), indent=2))
        return 0 if attributed.fully_attributed and ok_budget else 1

    print(f"simulated {scenario.blocks} blocks/stream over {run.horizon} "
          f"cycles with {len(plan) if plan else 0} scheduled event(s), "
          f"{args.spares} spare tile(s)")
    print()
    if not rm.transitions:
        print("no mode transitions occurred")
    else:
        print(f"{'#':>2} {'trigger':<14} {'detail':<24} {'at':>8} "
              f"{'latency':>8} {'budget':>8} {'verdict':>10}")
        for t in rm.transitions:
            verdict = ("refused" if not t.accepted
                       else "OK" if t.within_budget else "OVERRUN")
            detail = t.detail if t.accepted else f"{t.detail} ({t.reason})"
            print(f"{t.index:>2} {t.trigger:<14} {detail:<24} "
                  f"{t.requested_at:>8} {t.latency:>8} {t.budget:>8} "
                  f"{verdict:>10}")
    if run.chain.remaps:
        print()
        print("tile remaps: " + ", ".join(f"{a}->{b}"
                                          for a, b in run.chain.remaps))
    print()
    print(modal.summary())
    print()
    print(attributed.summary())
    return 0 if attributed.fully_attributed and ok_budget else 1


def cmd_scenarios(args: argparse.Namespace) -> int:
    """List, describe or run entries of the scenario registry."""
    import json

    from .app import scenarios as registry

    if args.action == "list":
        width = max((len(n) for n in registry.names()), default=0)
        for name in registry.names():
            d = registry.get(name)
            tags = f"  [{', '.join(d.tags)}]" if d.tags else ""
            print(f"{name:<{width}}  {d.description}{tags}")
        return 0

    if args.action == "describe":
        try:
            print(registry.describe(args.name))
        except registry.ScenarioError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return 0

    # run NAME[?params]
    try:
        scenario = registry.build_scenario(args.name)
    except registry.ScenarioError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.blocks is not None:
        scenario = scenario.with_blocks(args.blocks)
    scenario = scenario.with_backend(args.backend)
    if args.max_cycles is not None:
        scenario = scenario.with_max_cycles(args.max_cycles)
    result = scenario.build()
    if args.json:
        print(json.dumps(result.report("run"), indent=2))
        return 0 if result.clean else 1
    attributed = result.attributed_conformance()
    name = registry.parse_ref(args.name)[0]
    rm = result.reconfig
    print(f"scenario {name}: {len(result.system.streams)} stream(s), "
          f"{len(result.system.accelerators)} accelerator(s), "
          f"{scenario.blocks} blocks/stream over {result.horizon} cycles")
    if rm is not None:
        print(f"{len(rm.transitions)} mode transition(s), "
              f"{sum(1 for t in rm.transitions if t.accepted)} accepted")
    print()
    print(attributed.summary())
    verdict = "clean" if attributed.fully_attributed else "UNATTRIBUTED VIOLATIONS"
    print(f"\nverdict: {verdict}")
    return 0 if attributed.fully_attributed else 1


def cmd_sweep(args: argparse.Namespace) -> int:
    """Fan a sweep-spec JSON out over an execution backend; persist BENCH JSON."""
    import json
    from pathlib import Path

    from .exp import Sweep, SweepError, SweepInterrupted, run_sweep
    from .exp.store import StoreMismatch
    from .exp.sweep import scenario_corpus
    from .exp.tasks import get_task

    if args.spec.lstrip().startswith("scenario://"):
        # registry reference: fan a seeded corpus instead of a JSON spec
        spec = {}
        try:
            sweep = scenario_corpus(args.spec, points=args.points,
                                    name=args.name, seed=args.seed)
        except SweepError as exc:
            print(f"error: invalid scenario reference {args.spec}: {exc}",
                  file=sys.stderr)
            return 2
    elif args.spec.lstrip().startswith("scenario:"):
        print(f"error: malformed scenario reference {args.spec!r} "
              "(expected scenario://name?param=value)", file=sys.stderr)
        return 2
    else:
        try:
            spec = json.loads(Path(args.spec).read_text())
        except OSError as exc:
            print(f"error: cannot read sweep spec {args.spec}: {exc}",
                  file=sys.stderr)
            return 2
        except json.JSONDecodeError as exc:
            print(f"error: {args.spec} is not valid JSON: {exc}", file=sys.stderr)
            return 2
        try:
            name = spec["name"]
            task = get_task(spec["task"])
            if "axes" in spec:
                sweep = Sweep.grid(name, task, spec["axes"],
                                   base=spec.get("base"), seed=spec.get("seed", 0))
            elif "points" in spec:
                sweep = Sweep(name, task, spec["points"], seed=spec.get("seed", 0))
            else:
                raise SweepError("spec needs an 'axes' grid or a 'points' list")
        except (KeyError, TypeError, SweepError) as exc:
            print(f"error: invalid sweep spec {args.spec}: {exc}", file=sys.stderr)
            return 2
    if args.resume and args.store is None:
        print("error: --resume needs --store DIR to resume from",
              file=sys.stderr)
        return 2

    workers = 1 if args.serial else args.workers
    executor = "serial" if args.serial else args.executor
    chunk_size = spec.get("chunk_size")
    try:
        result = run_sweep(
            sweep, workers=workers, chunk_size=chunk_size,
            timeout=args.timeout, retries=args.retries, backoff=args.backoff,
            executor=executor, store=args.store, resume=args.resume,
            interrupt_after=args.interrupt_after, out_dir=args.out,
        )
    except StoreMismatch as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except SweepInterrupted as exc:
        print(f"interrupted: {exc}", file=sys.stderr)
        print(f"resume with: repro sweep {args.spec} --store {args.store} "
              "--resume", file=sys.stderr)
        return 3
    path = Path(args.out) / f"BENCH_{result.name}.json"
    cache = result.cache
    print(f"sweep {result.name}: {len(result.outcomes)} point(s) on "
          f"{result.workers} worker(s) ({result.mode}), chunk size "
          f"{result.chunk_size}, {result.elapsed_s:.2f}s")
    print(f"solver cache: {cache['hits']}/{cache['lookups']} hits "
          f"({cache['hit_rate']:.0%}), {cache['warm_starts']} warm start(s)")
    if result.store_path is not None:
        print(f"store: {result.resumed_chunks}/{result.chunk_count} chunk(s) "
              f"replayed from journal ({result.store_hits} point hit(s)), "
              f"journal {result.store_path}")
    if result.degraded or result.worker_restarts:
        print(f"recovery: {result.worker_restarts} worker restart(s)"
              + (", degraded to serial" if result.degraded else ""))
    for q in result.quarantined:
        print(f"  QUARANTINED {q['id']} (chunk {q['chunk']}, "
              f"{q['failures']} worker death(s)): {q['error']}",
              file=sys.stderr)
    print(f"wrote {path}")
    if args.check:
        serial = run_sweep(sweep, workers=1, chunk_size=chunk_size,
                           timeout=args.timeout, retries=args.retries,
                           backoff=args.backoff)
        if serial.digest() != result.digest():
            print("error: serial re-run digest mismatch — "
                  f"{serial.digest()[:16]} != {result.digest()[:16]}",
                  file=sys.stderr)
            return 1
        print(f"serial re-run digest matches ({result.digest()[:16]}…)")
    for o in result.failed:
        print(f"  FAILED {o.id}: {o.error}", file=sys.stderr)
    return 0 if result.ok else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the multi-tenant admission-control service over a JSON config.

    Exit codes follow the ``sweep`` convention: 0 on a clean shutdown
    (a client's ``shutdown`` op, or a successful ``--smoke`` run), 2 for
    unusable configuration (unreadable/invalid JSON, infeasible baseline,
    bad flags), 3 when interrupted (SIGINT) while serving.
    """
    import asyncio
    import json
    from pathlib import Path

    from .core import ParameterError, load_system
    from .serve import AdmissionService, serve_forever, smoke_session

    try:
        text = Path(args.config).read_text()
    except OSError as exc:
        print(f"error: cannot read system config {args.config}: {exc}",
              file=sys.stderr)
        return 2
    try:
        system = load_system(text)
        service = AdmissionService(
            system,
            backend=args.backend,
            queue_depth=args.queue_depth,
            solver_timeout=args.solver_timeout,
        )
    except ParameterError as exc:
        print(f"error: invalid system config {args.config}: {exc}",
              file=sys.stderr)
        return 2

    async def run() -> int:
        ready = asyncio.Event()
        bound: list = []
        server = asyncio.ensure_future(serve_forever(
            service, args.host, args.port, ready=ready, bound=bound,
        ))
        try:
            await ready.wait()
        except BaseException:
            server.cancel()
            raise
        host, port = bound[0]
        if not args.smoke:
            print(f"admission service listening on {host}:{port} "
                  f"({len(system.streams)} baseline stream(s), "
                  f"queue depth {args.queue_depth})", flush=True)
            await server
            return 0
        try:
            summary = await asyncio.to_thread(smoke_session, host, port)
        finally:
            service.shutdown_requested.set()
            await server
        print(json.dumps(summary, indent=2))
        return 0 if summary["ok"] else 1

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        print("interrupted while serving", file=sys.stderr)
        return 3


def _add_config_arg(p: argparse.ArgumentParser) -> None:
    """Positional system config + --scenario + hidden --config/--params."""
    p.add_argument("config", nargs="?", default=None,
                   help="path to a system JSON (see repro.core.config_io)")
    p.add_argument("--scenario", default=None, metavar="NAME[?params]",
                   help="registered scenario reference instead of a config "
                        "(see 'repro scenarios list'); with neither, "
                        "pal_decoder is the default")
    p.add_argument("--config", "--params", dest="config_opt", default=None,
                   help=argparse.SUPPRESS)


def _add_max_cycles_arg(p: argparse.ArgumentParser) -> None:
    """Canonical --max-cycles + hidden legacy --cycles spelling."""
    p.add_argument("--max-cycles", type=int, default=None,
                   help="hard cycle cap; stalling past it is an error")
    p.add_argument("--cycles", dest="max_cycles", type=int,
                   help=argparse.SUPPRESS)


def _resolve_config(args: argparse.Namespace, parser: argparse.ArgumentParser) -> None:
    opt = getattr(args, "config_opt", None)
    if opt is not None:
        if args.config is not None:
            parser.error("give the system config either positionally or via "
                         "--config, not both")
        args.config = opt
    if args.config is not None and getattr(args, "scenario", None) is not None:
        parser.error("give either a system config or --scenario, not both")
    # neither config nor --scenario: _scenario_from_args defaults to the
    # registry's pal_decoder entry


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="IPDPSW'15 accelerator-sharing reproduction"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("blocksizes", help="Algorithm-1 block sizes (PAL app)")
    p.add_argument("--clock", type=int, default=100_000_000)
    p.add_argument("--audio", type=int, default=44_100)
    p.add_argument("--margin", type=float, default=0.0,
                   help="rate margin in percent (0.127 reproduces the paper)")
    p.set_defaults(fn=cmd_blocksizes)

    p = sub.add_parser("verify", help="full verification of the PAL deployment")
    p.set_defaults(fn=cmd_verify)

    p = sub.add_parser("table1", help="Table I cost comparison")
    p.set_defaults(fn=cmd_table1)

    p = sub.add_parser("fig8", help="Fig. 8 buffer non-monotonicity")
    p.set_defaults(fn=cmd_fig8)

    p = sub.add_parser("utilization", help="Section VI-A utilization split")
    p.set_defaults(fn=cmd_utilization)

    p = sub.add_parser("schedule", help="Fig. 6 schedule (symbolic + concrete)")
    p.add_argument("--eta", type=int, default=6)
    p.set_defaults(fn=cmd_schedule)

    p = sub.add_parser("analyze", help="analyze a JSON gateway-system config")
    p.add_argument("config", help="path to a system JSON (see repro.core.config_io)")
    p.add_argument("--backend", choices=("scipy", "bnb"), default="scipy")
    p.set_defaults(fn=cmd_analyze)

    p = sub.add_parser(
        "metrics", help="simulate a JSON config; per-stream runtime metrics"
    )
    _add_config_arg(p)
    p.add_argument("--backend", choices=("scipy", "bnb"), default="scipy")
    p.add_argument("--blocks", type=int, default=None,
                   help="blocks per stream (default 4, or the scenario's "
                        "own setting)")
    _add_max_cycles_arg(p)
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(fn=cmd_metrics)

    p = sub.add_parser(
        "conformance",
        help="simulate a JSON config; observed-vs-bound (Eq. 2-5) margins",
    )
    _add_config_arg(p)
    p.add_argument("--backend", choices=("scipy", "bnb"), default="scipy")
    p.add_argument("--blocks", type=int, default=None,
                   help="blocks per stream (default 4, or the scenario's "
                        "own setting)")
    _add_max_cycles_arg(p)
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.add_argument("--uncalibrated", action="store_true",
                   help="check against the bare model parameters instead of "
                        "the architecture-calibrated ones")
    p.set_defaults(fn=cmd_conformance)

    p = sub.add_parser(
        "faults",
        help="simulate a JSON config under a fault plan; recovery report",
    )
    _add_config_arg(p)
    p.add_argument("--plan", default=None,
                   help="path to a fault-plan JSON (see repro.sim.faults); "
                        "optional when the --scenario entry carries one")
    p.add_argument("--backend", choices=("scipy", "bnb"), default="scipy")
    p.add_argument("--blocks", type=int, default=None,
                   help="blocks per stream (default 4, or the scenario's "
                        "own setting)")
    _add_max_cycles_arg(p)
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(fn=cmd_faults)

    p = sub.add_parser(
        "reconfig",
        help="simulate a churn plan (stream joins/leaves, tile failures) "
             "with runtime reconfiguration",
    )
    _add_config_arg(p)
    p.add_argument("--plan", default=None,
                   help="path to a churn/fault-plan JSON (see "
                        "repro.sim.faults); optional when the --scenario "
                        "entry carries churn")
    p.add_argument("--spares", type=int, default=0,
                   help="dormant spare accelerator tiles for failover")
    p.add_argument("--backend", choices=("scipy", "bnb"), default="scipy")
    p.add_argument("--blocks", type=int, default=None,
                   help="blocks per stream (default 8, or the scenario's "
                        "own setting)")
    _add_max_cycles_arg(p)
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(fn=cmd_reconfig)

    p = sub.add_parser(
        "scenarios",
        help="list/describe/run entries of the scenario registry "
             "(repro.app.scenarios)",
    )
    ssub = p.add_subparsers(dest="action", required=True)
    sp = ssub.add_parser("list", help="one line per registered scenario")
    sp.set_defaults(fn=cmd_scenarios)
    sp = ssub.add_parser("describe",
                         help="name, tags and parameter schema of one entry")
    sp.add_argument("name", help="registered scenario name")
    sp.set_defaults(fn=cmd_scenarios)
    sp = ssub.add_parser(
        "run",
        help="build and simulate one entry; exit 0 only on zero "
             "unattributed Eq. 2-5 violations",
    )
    sp.add_argument("name", metavar="NAME[?params]",
                    help="scenario reference, e.g. product_cipher or "
                         "generated?seed=7")
    sp.add_argument("--blocks", type=int, default=None,
                    help="override the scenario's blocks per stream")
    sp.add_argument("--backend", choices=("scipy", "bnb"), default="scipy")
    _add_max_cycles_arg(sp)
    sp.add_argument("--json", action="store_true",
                    help="machine-readable 'run' report envelope")
    sp.set_defaults(fn=cmd_scenarios)

    p = sub.add_parser(
        "sweep",
        help="run a parameter-sweep spec over worker processes "
             "(repro.exp); writes BENCH_<name>.json",
    )
    p.add_argument("spec", help="path to a sweep-spec JSON (name, task, "
                                "axes/points, base, seed), or a "
                                "scenario://name?params registry reference "
                                "to fan a seeded corpus")
    p.add_argument("--points", type=int, default=25,
                   help="corpus size for a scenario:// reference "
                        "(ignored for JSON specs)")
    p.add_argument("--name", default=None,
                   help="artifact name for a scenario:// corpus "
                        "(default scenario_corpus_<scenario>)")
    p.add_argument("--seed", type=int, default=0,
                   help="sweep root seed for a scenario:// corpus")
    p.add_argument("--workers", type=int, default=None,
                   help="worker processes (default: min(4, cpu count))")
    p.add_argument("--serial", action="store_true",
                   help="run in-process (identical results, no pool)")
    p.add_argument("--executor", choices=("serial", "pool", "queue"),
                   default=None,
                   help="execution backend (default: serial when workers "
                        "<= 1, else pool; queue = crash-tolerant "
                        "file-protocol work queue)")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-point wall-clock limit in seconds")
    p.add_argument("--retries", type=int, default=0,
                   help="extra attempts per failing point")
    p.add_argument("--backoff", type=float, default=0.0,
                   help="base seconds for seeded exponential retry backoff")
    p.add_argument("--store", default=None,
                   help="result-store directory: journal completed chunks "
                        "durably; matching journaled chunks replay as cache "
                        "hits")
    p.add_argument("--resume", action="store_true",
                   help="require and resume a matching journal in --store "
                        "(exit 3 from an interrupted run pairs with this)")
    p.add_argument("--interrupt-after", type=int, default=None,
                   help=argparse.SUPPRESS)  # CI/test hook: stop after N chunks
    p.add_argument("--out", default=".",
                   help="directory for BENCH_<name>.json (default: cwd)")
    p.add_argument("--check", action="store_true",
                   help="re-run serially and verify the merged results are "
                        "bit-identical")
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser(
        "serve",
        help="run the multi-tenant admission-control service "
             "(repro.serve) over a JSON config",
    )
    p.add_argument("config", help="path to the baseline system JSON")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (default 0 = ephemeral; printed at startup)")
    p.add_argument("--backend", choices=("scipy", "bnb"), default="scipy")
    p.add_argument("--queue-depth", type=int, default=128,
                   help="bounded admission queue; beyond it requests are "
                        "rejected 'overloaded'")
    p.add_argument("--solver-timeout", type=float, default=5.0,
                   help="seconds before an exact solve counts as a circuit-"
                        "breaker failure")
    p.add_argument("--smoke", action="store_true",
                   help="bind, run the scripted join/overload/leave client "
                        "against the live server, print the check summary "
                        "and exit (CI gate)")
    p.set_defaults(fn=cmd_serve)

    args = parser.parse_args(argv)
    if hasattr(args, "config_opt"):
        _resolve_config(args, parser)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
