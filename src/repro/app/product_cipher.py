"""The product-cipher pipeline application (second real chain).

A heterogeneous product cipher in the style of Nawinne et al. (PAPERS.md):
``sessions`` independent byte streams share one key-mix → S-box → permute
accelerator chain behind an entry/exit-gateway pair.  Like the PAL decoder
(:mod:`repro.app.pal_decoder`) the application exists in two modes over
identical kernels:

* :func:`encrypt_functional` / the :func:`~repro.accel.cipher.product_decrypt`
  inverse — the golden reference, kernels run back-to-back with no timing,
* :func:`build_cipher_soc` / :func:`run_cipher_on_soc` — the full
  architecture: the three cipher tiles multiplexed between sessions by the
  gateway pair, each session carrying its own key schedule and S-box in its
  kernel-context snapshots.

The chain differs from the PAL decoder in exactly the dimensions the
scenario registry needs for diversity: **three** heterogeneous tiles
(``ρ_permute = 2`` breaks the all-ones firing profile), a reconfiguration
cost dominated by the 256-word S-box state, and session streams of equal
rate class instead of the PAL 8:1 stage split.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from ..accel.cipher import (
    KeyMixKernel,
    PermuteBlockKernel,
    SBoxKernel,
    block_permutation,
    product_encrypt,
    sbox_table,
)
from ..arch import Compute, Get, MPSoC, Put, TaskSpec
from ..core import AcceleratorSpec, GatewaySystem, ParameterError, StreamSpec
from ..sim import Kind

__all__ = [
    "ProductCipherConfig",
    "CipherSocHandles",
    "cipher_gateway_system",
    "encrypt_functional",
    "build_cipher_soc",
    "run_cipher_on_soc",
]


@dataclass(frozen=True)
class ProductCipherConfig:
    """Parameters of the product-cipher deployment.

    ``eta`` is the common session block size (every session is the same
    rate class); it must be a multiple of the permutation ``width`` so a
    block drains the transposition buffer completely — otherwise residue
    bytes leak between context switches.
    """

    sessions: int = 3
    eta: int = 24
    width: int = 8
    key: tuple[int, ...] = (0x3A, 0xC5, 0x96, 0x0F)
    sbox_seed: int = 7
    entry_copy: int = 4
    exit_copy: int = 1
    permute_rho: int = 2
    reconfigure_cycles: int = 300
    ni_capacity: int = 2
    load_pct: int = 30

    def __post_init__(self) -> None:
        if self.sessions < 1:
            raise ParameterError("product cipher needs at least one session")
        if self.width < 1:
            raise ParameterError(f"permutation width must be >= 1, got {self.width}")
        if self.eta % self.width:
            raise ParameterError(
                f"eta ({self.eta}) must be a multiple of the permutation "
                f"width ({self.width}) so blocks drain the transposition buffer"
            )
        if not 1 <= self.load_pct <= 95:
            raise ParameterError(f"load_pct must be in [1, 95], got {self.load_pct}")

    @property
    def perm(self) -> tuple[int, ...]:
        return block_permutation(self.width, self.sbox_seed)

    def session_states(self, session: int) -> list[dict]:
        """Kernel contexts for one session: rotated key, session S-box.

        Each session gets its own key rotation and its own substitution
        table, so a context switch genuinely swaps cipher state — the
        gateway cannot cheat by leaving a table behind.
        """
        key = tuple(self.key[(i + session) % len(self.key)] ^ (session * 17) & 0xFF
                    for i in range(len(self.key)))
        return [
            KeyMixKernel(key).get_state(),
            SBoxKernel(seed=self.sbox_seed + session).get_state(),
            PermuteBlockKernel(self.perm).get_state(),
        ]


def cipher_gateway_system(config: ProductCipherConfig | None = None) -> GatewaySystem:
    """The cipher deployment as a :class:`GatewaySystem` for the analysis.

    Session rates split a ``load_pct`` aggregate Eq. 5 load across equally
    weighted sessions; the reconfiguration time models the S-box-dominated
    context transfer.
    """
    config = config or ProductCipherConfig()
    c0 = max(config.entry_copy, config.exit_copy, 1, config.permute_rho)
    mu = Fraction(config.load_pct, 100 * c0 * config.sessions)
    streams = tuple(
        StreamSpec(f"enc{i}", mu, config.reconfigure_cycles,
                   block_size=config.eta)
        for i in range(config.sessions)
    )
    accelerators = (
        AcceleratorSpec("keymix", 1),
        AcceleratorSpec("sbox", 1),
        AcceleratorSpec("permute", config.permute_rho),
    )
    return GatewaySystem(
        accelerators=accelerators,
        streams=streams,
        entry_copy=config.entry_copy,
        exit_copy=config.exit_copy,
        ni_capacity=config.ni_capacity,
    )


# --------------------------------------------------------------- functional
def encrypt_functional(
    plaintext: np.ndarray, config: ProductCipherConfig, session: int = 0
) -> np.ndarray:
    """Golden-reference encryption of one session's byte stream."""
    states = config.session_states(session)
    key = tuple(states[0]["key"])
    table = tuple(states[1]["table"])
    out: list[int] = []
    keymix = KeyMixKernel(key)
    sbox = SBoxKernel(table)
    permute = PermuteBlockKernel(config.perm)
    for sample in plaintext:
        for mixed in keymix.process(sample):
            for substituted in sbox.process(mixed):
                out.extend(permute.process(substituted))
    return np.asarray(out, dtype=np.int64)


# ------------------------------------------------------------ architectural
@dataclass
class CipherSocHandles:
    """Handles into a built product-cipher MPSoC."""

    soc: MPSoC
    chain: object  # SharedChain
    in_fifos: dict[str, object]
    out_fifos: dict[str, object]
    collected: dict[str, list]

    def stream_metrics(self) -> dict:
        tracer = self.soc.tracer if self.soc.tracer.enabled else None
        return self.chain.stream_metrics(tracer)


def build_cipher_soc(
    config: ProductCipherConfig,
    plaintexts: dict[str, np.ndarray],
    trace: bool = False,
    trace_mode: str = "ring",
    trace_capacity: int | None = 65536,
) -> CipherSocHandles:
    """Wire the cipher sessions onto the shared three-tile MPSoC.

    ``plaintexts`` maps session stream names (``enc0`` … ``encN``) to byte
    arrays; every array length must be a multiple of ``config.eta``.
    """
    names = [f"enc{i}" for i in range(config.sessions)]
    if set(plaintexts) != set(names):
        raise ParameterError(
            f"plaintexts must cover exactly the sessions {names}, "
            f"got {sorted(plaintexts)}"
        )
    for name, data in plaintexts.items():
        if len(data) % config.eta:
            raise ParameterError(
                f"session {name!r}: {len(data)} samples is not a whole "
                f"number of η={config.eta} blocks"
            )

    soc = MPSoC(n_stations=7, trace=trace,
                trace_kinds=Kind.METRICS if trace else None,
                trace_mode=trace_mode, trace_capacity=trace_capacity)
    producer = soc.add_processor("keysrc")
    consumer = soc.add_processor("sink")
    entry_station = 2
    exit_station = entry_station + 4  # entry + 3 cipher tiles + exit

    in_fifos = {}
    out_fifos = {}
    for name in names:
        n = len(plaintexts[name])
        in_fifos[name] = producer.fifo_to(
            entry_station, capacity=n + 8, name=f"{name}.in"
        )
        out_fifos[name] = soc.software_fifo(
            exit_station, consumer, capacity=n + 8, name=f"{name}.out"
        )

    kernels = [
        KeyMixKernel(config.key),
        SBoxKernel(seed=config.sbox_seed),
        PermuteBlockKernel(config.perm, rho=config.permute_rho),
    ]
    configs = [
        {"name": name, "eta": config.eta,
         "in_fifo": in_fifos[name], "out_fifo": out_fifos[name],
         "states": config.session_states(i),
         "reconfigure_cycles": config.reconfigure_cycles}
        for i, name in enumerate(names)
    ]
    chain = soc.shared_chain(
        "cipher", kernels, configs,
        entry_copy=config.entry_copy, exit_copy=config.exit_copy,
        ni_capacity=config.ni_capacity,
    )

    collected: dict[str, list] = {name: [] for name in names}

    def feeder(name):
        data = plaintexts[name]

        def gen():
            for b in data:
                yield Put(in_fifos[name], int(b) & 0xFF)
        return gen

    def drainer(name):
        total = len(plaintexts[name])

        def gen():
            for _ in range(total):
                word = yield Get(out_fifos[name])
                yield Compute(1)
                collected[name].append(int(word))
        return gen

    for name in names:
        producer.add_task(TaskSpec(f"feed:{name}", feeder(name)))
        consumer.add_task(TaskSpec(f"drain:{name}", drainer(name)))
    producer.start()
    consumer.start()
    return CipherSocHandles(soc, chain, in_fifos, out_fifos, collected)


def run_cipher_on_soc(
    config: ProductCipherConfig,
    plaintexts: dict[str, np.ndarray],
    horizon: int | None = None,
) -> tuple[dict[str, np.ndarray], CipherSocHandles]:
    """Encrypt every session on the MPSoC; return per-session ciphertexts.

    The integration tests assert the result equals
    :func:`encrypt_functional` per session — sharing the three cipher tiles
    between sessions is functionally transparent.
    """
    handles = build_cipher_soc(config, plaintexts)
    if horizon is None:
        total = sum(len(d) for d in plaintexts.values())
        blocks = sum(
            max(1, len(d) // config.eta) for d in plaintexts.values()
        ) + len(plaintexts)
        per_sample = 2 * (config.entry_copy + config.permute_rho + 12)
        horizon = int(total * per_sample
                      + blocks * (config.reconfigure_cycles + 600) + 20_000)
    handles.soc.run(until=horizon)
    out = {
        name: np.asarray(values, dtype=np.int64)
        for name, values in handles.collected.items()
    }
    return out, handles
