"""Bridge from the PAL application to the temporal analysis of repro.core.

Derives the :class:`~repro.core.params.GatewaySystem` describing the PAL
deployment — four streams (two per channel: the 64·f_audio stage-1 rate and
the 8·f_audio stage-2 rate) sharing the CORDIC + FIR chain — so Algorithm 1
can compute the block sizes the paper reports (10136 / 1267 at 44.1 kHz on
the prototype's clock).
"""

from __future__ import annotations

from fractions import Fraction

from ..core import AcceleratorSpec, GatewaySystem, StreamSpec, compute_block_sizes

__all__ = ["pal_gateway_system", "pal_block_sizes", "PAPER_BLOCK_SIZES"]

#: the block sizes the paper reports for the 44.1 kHz demonstrator
PAPER_BLOCK_SIZES = {"stage1": 10136, "stage2": 1267}


def pal_gateway_system(
    audio_rate: int = 44_100,
    clock_hz: int = 100_000_000,
    reconfigure: int = 4100,
    entry_copy: int = 15,
    exit_copy: int = 1,
    rate_margin: Fraction = Fraction(1),
) -> GatewaySystem:
    """The PAL demonstrator as a :class:`GatewaySystem`.

    Stage-1 streams consume the front-end rate ``64 × audio_rate``
    (two 8:1 decimations between front-end and audio output); stage-2
    streams consume ``8 × audio_rate``.  ``rate_margin`` scales the
    requirements (the paper's exact η values correspond to ≈0.4% margin at
    a 100 MHz clock — see EXPERIMENTS.md).
    """
    mu1 = Fraction(64 * audio_rate, clock_hz) * rate_margin
    mu2 = Fraction(8 * audio_rate, clock_hz) * rate_margin
    streams = (
        StreamSpec("ch1.s1", mu1, reconfigure),
        StreamSpec("ch2.s1", mu1, reconfigure),
        StreamSpec("ch1.s2", mu2, reconfigure),
        StreamSpec("ch2.s2", mu2, reconfigure),
    )
    accelerators = (
        AcceleratorSpec("cordic", 1),
        AcceleratorSpec("fir_downsampler", 1),
    )
    return GatewaySystem(
        accelerators=accelerators,
        streams=streams,
        entry_copy=entry_copy,
        exit_copy=exit_copy,
    )


def pal_block_sizes(**kwargs) -> dict[str, int]:
    """Algorithm-1 block sizes for the PAL demonstrator."""
    system = pal_gateway_system(**kwargs)
    return compute_block_sizes(system).block_sizes
