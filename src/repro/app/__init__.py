"""Applications: the PAL stereo decoder (paper Section VI), the product
cipher chain, and the named-scenario registry fronting both."""

from .analysis_bridge import PAPER_BLOCK_SIZES, pal_block_sizes, pal_gateway_system
from .pal_decoder import (
    PalDecoderConfig,
    PalSocHandles,
    build_pal_soc,
    decode_functional,
    run_pal_on_soc,
)
from .product_cipher import (
    ProductCipherConfig,
    build_cipher_soc,
    cipher_gateway_system,
    encrypt_functional,
    run_cipher_on_soc,
)
from .scenarios import (
    ScenarioDefinition,
    ScenarioError,
    build_scenario,
    format_ref,
    generate,
    parse_ref,
    register,
)
from .scenarios import describe as describe_scenario
from .scenarios import get as get_scenario
from .scenarios import names as scenario_names

__all__ = [
    "PAPER_BLOCK_SIZES",
    "PalDecoderConfig",
    "PalSocHandles",
    "ProductCipherConfig",
    "ScenarioDefinition",
    "ScenarioError",
    "build_cipher_soc",
    "build_pal_soc",
    "build_scenario",
    "cipher_gateway_system",
    "decode_functional",
    "describe_scenario",
    "encrypt_functional",
    "format_ref",
    "generate",
    "get_scenario",
    "pal_block_sizes",
    "pal_gateway_system",
    "parse_ref",
    "register",
    "run_cipher_on_soc",
    "run_pal_on_soc",
    "scenario_names",
]
