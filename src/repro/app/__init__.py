"""The PAL stereo audio decoder application (paper Section VI)."""

from .analysis_bridge import PAPER_BLOCK_SIZES, pal_block_sizes, pal_gateway_system
from .pal_decoder import (
    PalDecoderConfig,
    PalSocHandles,
    build_pal_soc,
    decode_functional,
    run_pal_on_soc,
)

__all__ = [
    "PAPER_BLOCK_SIZES",
    "PalDecoderConfig",
    "PalSocHandles",
    "build_pal_soc",
    "decode_functional",
    "pal_block_sizes",
    "pal_gateway_system",
    "run_pal_on_soc",
]
