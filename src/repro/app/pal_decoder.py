"""The PAL stereo audio decoder application (paper Section VI-A, Fig. 10).

Two execution modes over the identical task graph:

* :func:`decode_functional` — the golden reference: the four processing
  streams run back-to-back on the kernel objects (no timing), producing the
  reconstructed stereo audio.
* :func:`build_pal_soc` / :func:`run_pal_on_soc` — the full architecture:
  one shared CORDIC tile + one shared FIR+down-sampler tile behind an
  entry/exit-gateway pair, multiplexing **four streams** (2 channels × 2
  chain stages) exactly as in the prototype; a producer task feeds the
  synthetic front-end samples, the stage-1 outputs loop back into the
  gateway as stage-2 inputs, and a software task reconstructs
  ``L = 2·(L+R)/2 − R``.

Because both modes share kernels and stream structure, the integration
tests can assert that the gateway-multiplexed system is *functionally
identical* to the reference (sharing is transparent) while the timing side
is validated against the temporal analysis of :mod:`repro.core`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..accel import (
    CordicKernel,
    FirDecimatorKernel,
    PalChannelPlan,
    design_lowpass,
    normalize_fm_output,
    reconstruct_stereo,
    run_kernel,
    synthesize_pal_baseband,
)
from ..arch import Compute, Get, MPSoC, Put, TaskSpec
from ..sim import Kind

__all__ = ["PalDecoderConfig", "decode_functional", "build_pal_soc", "run_pal_on_soc",
           "PalSocHandles"]


@dataclass(frozen=True)
class PalDecoderConfig:
    """Parameters of the PAL decoder deployment.

    ``eta_stage1``/``eta_stage2`` are the block sizes of the high-rate and
    low-rate streams (the paper's 10136/1267 pair at full scale; tests use
    proportionally scaled values keeping the 8:1 ratio).
    """

    plan: PalChannelPlan = field(default_factory=PalChannelPlan)
    eta_stage1: int = 64
    eta_stage2: int = 8
    entry_copy: int = 15
    exit_copy: int = 1
    reconfigure_cycles: int = 4100
    ni_capacity: int = 2
    fir_taps: int = 33
    decimation: int = 8

    def __post_init__(self) -> None:
        if self.eta_stage1 % self.decimation:
            raise ValueError("eta_stage1 must be a multiple of the decimation factor")
        if self.eta_stage2 % self.decimation:
            raise ValueError("eta_stage2 must be a multiple of the decimation factor")

    def stage1_states(self, carrier: float) -> list[dict]:
        """Kernel contexts for a stage-1 stream (mix to baseband + LPF↓8)."""
        cordic = CordicKernel("mix", carrier / self.plan.sample_rate)
        fir = FirDecimatorKernel(
            design_lowpass(self.fir_taps, 0.8 / (2 * self.decimation)),
            self.decimation,
        )
        return [cordic.get_state(), fir.get_state()]

    def stage2_states(self) -> list[dict]:
        """Kernel contexts for a stage-2 stream (FM demod + LPF↓8)."""
        cordic = CordicKernel("fm")
        fir = FirDecimatorKernel(
            design_lowpass(self.fir_taps, 0.8 / (2 * self.decimation)),
            self.decimation,
        )
        return [cordic.get_state(), fir.get_state()]


# --------------------------------------------------------------- functional
def decode_functional(
    baseband: np.ndarray, config: PalDecoderConfig
) -> tuple[np.ndarray, np.ndarray]:
    """Golden-reference decode: kernels run directly, no architecture.

    Returns the reconstructed ``(left, right)`` audio at the final rate.
    """
    plan = config.plan

    def stage_pair(states1: list[dict], states2: list[dict], x: np.ndarray) -> np.ndarray:
        c1, f1 = CordicKernel(), FirDecimatorKernel(factor=config.decimation)
        c1.set_state(states1[0])
        f1.set_state(states1[1])
        mid = run_kernel(f1, run_kernel(c1, x))
        c2, f2 = CordicKernel(), FirDecimatorKernel(factor=config.decimation)
        c2.set_state(states2[0])
        f2.set_state(states2[1])
        return run_kernel(f2, run_kernel(c2, mid))

    ch1 = stage_pair(config.stage1_states(plan.carrier1), config.stage2_states(), baseband)
    ch2 = stage_pair(config.stage1_states(plan.carrier2), config.stage2_states(), baseband)
    fm_rate = plan.sample_rate / config.decimation
    lpr = normalize_fm_output(np.real(ch1), plan.deviation, fm_rate)
    r = normalize_fm_output(np.real(ch2), plan.deviation, fm_rate)
    return reconstruct_stereo(lpr, r)


# ------------------------------------------------------------ architectural
@dataclass
class PalSocHandles:
    """Handles into a built PAL MPSoC for driving and inspection."""

    soc: MPSoC
    chain: object  # SharedChain
    in_fifos: dict[str, object]
    out_fifos: dict[str, object]
    collected: dict[str, list]

    def stream_metrics(self) -> dict:
        """Observed per-stream :class:`~repro.sim.StreamMetrics`.

        Trace-derived quantities (observed sample latency) are populated
        when the SoC was built with ``trace=True``.
        """
        tracer = self.soc.tracer if self.soc.tracer.enabled else None
        return self.chain.stream_metrics(tracer)

    def utilization(self) -> object:
        """Entry-gateway :class:`~repro.sim.GatewayUtilization` so far."""
        return self.chain.utilization_breakdown(self.soc.sim.now)


def build_pal_soc(
    config: PalDecoderConfig,
    baseband: np.ndarray,
    trace: bool = False,
    trace_mode: str = "ring",
    trace_capacity: int | None = 65536,
) -> PalSocHandles:
    """Wire the Fig. 10 task graph onto the shared-accelerator MPSoC.

    Streams (round-robin order mirrors the prototype):

    ========  =================  =====================================
    name       block size         role
    ========  =================  =====================================
    ch1.s1    ``eta_stage1``      mix carrier 1 → LPF↓8
    ch2.s1    ``eta_stage1``      mix carrier 2 → LPF↓8
    ch1.s2    ``eta_stage2``      FM demod → LPF↓8
    ch2.s2    ``eta_stage2``      FM demod → LPF↓8
    ========  =================  =====================================

    Stage-1 output FIFOs feed straight back into the entry-gateway as the
    stage-2 inputs ("passed … to a processing tile or entry-gateway").
    """
    n = len(baseband)
    soc = MPSoC(n_stations=8, trace=trace,
                trace_kinds=Kind.METRICS if trace else None,
                trace_mode=trace_mode, trace_capacity=trace_capacity)
    producer = soc.add_processor("fe")       # front-end feeder, station 0
    consumer = soc.add_processor("audio")    # stereo task, station 1

    entry_station = 2
    exit_station = entry_station + 3  # entry + 2 accelerators + exit

    big = max(4 * config.eta_stage1, n + 8)
    in1 = {
        "ch1": producer.fifo_to(entry_station, capacity=big, name="ch1.s1.in"),
        "ch2": producer.fifo_to(entry_station, capacity=big, name="ch2.s1.in"),
    }
    # stage-1 out == stage-2 in: exit gateway -> entry gateway loopback
    mid = {
        "ch1": soc.software_fifo(exit_station, entry_station,
                                 capacity=max(2 * config.eta_stage2, 16),
                                 name="ch1.mid"),
        "ch2": soc.software_fifo(exit_station, entry_station,
                                 capacity=max(2 * config.eta_stage2, 16),
                                 name="ch2.mid"),
    }
    out = {
        "ch1": soc.software_fifo(exit_station, consumer,
                                 capacity=max(config.eta_stage2, 16), name="ch1.out"),
        "ch2": soc.software_fifo(exit_station, consumer,
                                 capacity=max(config.eta_stage2, 16), name="ch2.out"),
    }

    kernels = [CordicKernel(), FirDecimatorKernel(factor=config.decimation)]
    plan = config.plan
    configs = [
        {"name": "ch1.s1", "eta": config.eta_stage1, "in_fifo": in1["ch1"],
         "out_fifo": mid["ch1"], "states": config.stage1_states(plan.carrier1),
         "reconfigure_cycles": config.reconfigure_cycles},
        {"name": "ch2.s1", "eta": config.eta_stage1, "in_fifo": in1["ch2"],
         "out_fifo": mid["ch2"], "states": config.stage1_states(plan.carrier2),
         "reconfigure_cycles": config.reconfigure_cycles},
        {"name": "ch1.s2", "eta": config.eta_stage2, "in_fifo": mid["ch1"],
         "out_fifo": out["ch1"], "states": config.stage2_states(),
         "reconfigure_cycles": config.reconfigure_cycles},
        {"name": "ch2.s2", "eta": config.eta_stage2, "in_fifo": mid["ch2"],
         "out_fifo": out["ch2"], "states": config.stage2_states(),
         "reconfigure_cycles": config.reconfigure_cycles},
    ]
    chain = soc.shared_chain(
        "pal", kernels, configs,
        entry_copy=config.entry_copy, exit_copy=config.exit_copy,
        ni_capacity=config.ni_capacity,
    )

    collected: dict[str, list] = {"lpr": [], "r": [], "left": [], "right": []}
    n_audio = n // (config.decimation ** 2)

    def feeder():
        for s in baseband:
            yield Put(in1["ch1"], complex(s))
            yield Put(in1["ch2"], complex(s))

    def stereo_task():
        fm_rate = plan.sample_rate / config.decimation
        scale = 2.0 * np.pi * plan.deviation / fm_rate
        for _ in range(n_audio):
            a = yield Get(out["ch1"])
            b = yield Get(out["ch2"])
            yield Compute(4)  # the L = 2·(L+R)/2 − R arithmetic
            lpr, r = float(np.real(a)) / scale, float(np.real(b)) / scale
            collected["lpr"].append(lpr)
            collected["r"].append(r)
            collected["left"].append(2.0 * lpr - r)
            collected["right"].append(r)

    producer.add_task(TaskSpec("feeder", feeder))
    consumer.add_task(TaskSpec("stereo", stereo_task))
    producer.start()
    consumer.start()
    return PalSocHandles(soc, chain, {**in1, **mid}, out, collected)


def run_pal_on_soc(
    config: PalDecoderConfig,
    left: np.ndarray,
    right: np.ndarray,
    horizon: int | None = None,
) -> tuple[np.ndarray, np.ndarray, PalSocHandles]:
    """Synthesise a baseband for (left, right), decode it on the MPSoC.

    Returns ``(left_rec, right_rec, handles)`` with the audio de-meaned the
    same way the functional path normalises it.
    """
    baseband = synthesize_pal_baseband(left, right, config.plan)
    handles = build_pal_soc(config, baseband)
    if horizon is None:
        # generous: every input sample through a 15-cycle gateway, 4 streams,
        # plus reconfiguration per block rotation
        blocks = max(1, len(baseband) // config.eta_stage1) * 4 + 8
        horizon = int(len(baseband) * 2 * (config.entry_copy + 10)
                      + blocks * (config.reconfigure_cycles + 200))
    handles.soc.run(until=horizon)
    left_rec = np.asarray(handles.collected["left"], dtype=float)
    right_rec = np.asarray(handles.collected["right"], dtype=float)
    left_rec -= np.mean(left_rec) if len(left_rec) else 0.0
    right_rec -= np.mean(right_rec) if len(right_rec) else 0.0
    return left_rec, right_rec, handles
