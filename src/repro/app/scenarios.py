"""Named-scenario registry and seeded workload generator.

The canonical front door for everything runnable: each entry is a named,
parameter-schema'd builder returning a ready :class:`repro.api.Scenario`,
so the facade, the CLI and the sweep engine all construct workloads the
same way::

    from repro.api import Scenario
    Scenario.from_registry("product_cipher", sessions=4)
    load_scenario("scenario://generated?seed=42")
    python -m repro scenarios run multi_mode

Registered entries (see :func:`names` / ``repro scenarios list``):

* ``pal_decoder`` — the paper's PAL stereo decoder, re-registered from
  :func:`repro.app.analysis_bridge.pal_gateway_system` without behaviour
  change (test-scale 64/8 block sizes by default; ``eta_stage1=0`` defers
  to Algorithm 1),
* ``product_cipher`` — the heterogeneous key-mix → S-box → permute chain
  of :mod:`repro.app.product_cipher`,
* ``multi_mode`` — an adaptive multi-mode family: a churn schedule joins
  and leaves per-mode streams with mode-dependent rates and transition
  delays, driving the online-reconfiguration path,
* ``generated`` — :func:`generate`: a seeded random scenario over chain
  length, stream count, rate distributions and churn schedules.  Every
  output must run through conformance with **zero unattributed Eq. 2–5
  violations**; the fuzz sweep (``repro sweep scenario://generated?...``)
  and the CI smoke gate enforce exactly that.

Validation is eager and ``config_io``-style: unknown scenario names and
unknown/ill-typed parameters fail at lookup with a did-you-mean hint, not
deep inside a worker process.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from difflib import get_close_matches
from fractions import Fraction
from typing import Any, Callable, Mapping, Sequence
from urllib.parse import parse_qsl, unquote, urlsplit

from ..core.params import (
    AcceleratorSpec,
    GatewaySystem,
    ParameterError,
    StreamSpec,
)
from ..sim.faults import STREAM_JOIN, STREAM_LEAVE, FaultPlan, FaultSpec

__all__ = [
    "ScenarioError",
    "Param",
    "ScenarioDefinition",
    "register",
    "names",
    "get",
    "describe",
    "build_scenario",
    "parse_ref",
    "format_ref",
    "generate",
    "SCHEME",
]

#: URI scheme the registry answers to (``scenario://name?param=value``)
SCHEME = "scenario"


class ScenarioError(ParameterError):
    """Raised for unknown scenarios or invalid scenario parameters."""


_TRUE = frozenset({"1", "true", "yes", "on"})
_FALSE = frozenset({"0", "false", "no", "off"})


@dataclass(frozen=True)
class Param:
    """One knob of a registered scenario: typed, bounded, documented."""

    name: str
    type: type = int
    default: Any = None
    doc: str = ""
    minimum: int | float | None = None
    maximum: int | float | None = None
    choices: tuple[Any, ...] | None = None

    def coerce(self, value: Any) -> Any:
        """Validate ``value`` (possibly a URI query string) into the type."""
        if isinstance(value, str) and self.type is not str:
            try:
                if self.type is bool:
                    lowered = value.strip().lower()
                    if lowered in _TRUE:
                        value = True
                    elif lowered in _FALSE:
                        value = False
                    else:
                        raise ValueError(f"not a boolean: {value!r}")
                else:
                    value = self.type(value)
            except ValueError as err:
                raise ScenarioError(
                    f"parameter {self.name!r}: cannot parse {value!r} as "
                    f"{self.type.__name__} ({err})"
                ) from err
        if self.type is bool:
            if not isinstance(value, bool):
                raise ScenarioError(
                    f"parameter {self.name!r}: expected bool, "
                    f"got {type(value).__name__}"
                )
        elif self.type is float and isinstance(value, int):
            value = float(value)
        elif not isinstance(value, self.type) or isinstance(value, bool):
            raise ScenarioError(
                f"parameter {self.name!r}: expected {self.type.__name__}, "
                f"got {type(value).__name__} ({value!r})"
            )
        if self.minimum is not None and value < self.minimum:
            raise ScenarioError(
                f"parameter {self.name!r}: {value!r} is below the minimum "
                f"{self.minimum}"
            )
        if self.maximum is not None and value > self.maximum:
            raise ScenarioError(
                f"parameter {self.name!r}: {value!r} is above the maximum "
                f"{self.maximum}"
            )
        if self.choices is not None and value not in self.choices:
            raise ScenarioError(
                f"parameter {self.name!r}: {value!r} is not one of "
                f"{list(self.choices)}"
            )
        return value

    def describe(self) -> str:
        limits = []
        if self.minimum is not None or self.maximum is not None:
            lo = self.minimum if self.minimum is not None else ""
            hi = self.maximum if self.maximum is not None else ""
            limits.append(f"[{lo}..{hi}]")
        if self.choices is not None:
            limits.append(f"one of {list(self.choices)}")
        extra = (" " + " ".join(limits)) if limits else ""
        return (f"{self.name} ({self.type.__name__}, "
                f"default {self.default!r}{extra}) — {self.doc}")


@dataclass(frozen=True)
class ScenarioDefinition:
    """A registered scenario: name, description, schema and builder."""

    name: str
    description: str
    params: tuple[Param, ...]
    builder: Callable[..., Any] = field(repr=False)
    tags: tuple[str, ...] = ()

    @property
    def schema(self) -> dict[str, Param]:
        return {p.name: p for p in self.params}

    def validate(self, overrides: Mapping[str, Any]) -> dict[str, Any]:
        """Defaults merged over ``overrides``, each coerced to its schema.

        Unknown parameter names are rejected eagerly with a did-you-mean
        hint, exactly like :func:`repro.core.config_io.system_from_dict`
        rejects misspelled system keys.
        """
        schema = self.schema
        unknown = set(overrides) - set(schema)
        if unknown:
            hints = []
            for key in sorted(unknown):
                close = get_close_matches(str(key), sorted(schema), n=1)
                if close:
                    hints.append(f"did you mean {close[0]!r} instead of {key!r}?")
            hint = (" " + " ".join(hints)) if hints else ""
            raise ScenarioError(
                f"scenario {self.name!r} has no parameter(s) {sorted(unknown)} "
                f"(expected a subset of {sorted(schema)}).{hint}"
            )
        values = {p.name: p.default for p in self.params}
        for key, value in overrides.items():
            values[key] = schema[key].coerce(value)
        return values

    def build(self, **overrides: Any):
        """Build the validated :class:`repro.api.Scenario` this entry names."""
        return self.builder(**self.validate(overrides))

    def describe(self) -> str:
        lines = [f"{self.name} — {self.description}"]
        if self.tags:
            lines.append(f"  tags: {', '.join(self.tags)}")
        if self.params:
            lines.append("  parameters:")
            for p in self.params:
                lines.append(f"    {p.describe()}")
        else:
            lines.append("  parameters: (none)")
        return "\n".join(lines)


_REGISTRY: dict[str, ScenarioDefinition] = {}


def register(
    name: str,
    *,
    description: str,
    params: Sequence[Param] = (),
    tags: Sequence[str] = (),
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Decorator: register a builder function as a named scenario.

    The builder receives every schema parameter as a keyword argument
    (defaults already merged and validated) and must return a
    :class:`repro.api.Scenario`.
    """
    if not name or not name.replace("_", "a").isalnum():
        raise ScenarioError(
            f"scenario name must be a non-empty alphanumeric/underscore "
            f"string, got {name!r}"
        )
    seen: set[str] = set()
    for p in params:
        if p.name in seen:
            raise ScenarioError(
                f"scenario {name!r}: duplicate parameter {p.name!r}"
            )
        seen.add(p.name)

    def decorator(builder: Callable[..., Any]) -> Callable[..., Any]:
        if name in _REGISTRY:
            raise ScenarioError(f"scenario {name!r} is already registered")
        _REGISTRY[name] = ScenarioDefinition(
            name=name,
            description=description,
            params=tuple(params),
            builder=builder,
            tags=tuple(tags),
        )
        return builder

    return decorator


def names() -> list[str]:
    """Every registered scenario name, sorted."""
    return sorted(_REGISTRY)


def get(name: str) -> ScenarioDefinition:
    """Look up a registered scenario (did-you-mean on a miss)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        close = get_close_matches(name, sorted(_REGISTRY), n=2)
        hint = f"; did you mean {' or '.join(repr(c) for c in close)}?" if close else ""
        raise ScenarioError(
            f"unknown scenario {name!r} (registered: {', '.join(names())})"
            f"{hint}"
        ) from None


def describe(name: str) -> str:
    """Human-readable description of one registered scenario."""
    return get(name).describe()


def parse_ref(ref: str) -> tuple[str, dict[str, str]]:
    """Split a scenario reference into ``(name, raw_params)``.

    Accepts ``name``, ``name?seed=3&streams=2`` and the full
    ``scenario://name?...`` URI form.  Parameter values stay strings; the
    schema coerces them at :meth:`ScenarioDefinition.validate` time.
    """
    text = ref.strip()
    if "://" in text:
        split = urlsplit(text)
        if split.scheme != SCHEME:
            raise ScenarioError(
                f"unsupported scenario URI scheme {split.scheme!r} in {ref!r} "
                f"(expected {SCHEME}://name?param=value)"
            )
        # urlsplit parses the name as the netloc; a trailing path would be
        # a stray '/' the user probably didn't mean
        name = unquote(split.netloc)
        if split.path not in ("", "/"):
            raise ScenarioError(
                f"malformed scenario URI {ref!r}: unexpected path "
                f"{split.path!r} after the scenario name"
            )
        query = split.query
    elif "?" in text:
        name, _, query = text.partition("?")
    else:
        name, query = text, ""
    name = name.strip()
    if not name:
        raise ScenarioError(f"scenario reference {ref!r} names no scenario")
    params: dict[str, str] = {}
    for key, value in parse_qsl(query, keep_blank_values=True):
        if key in params:
            raise ScenarioError(
                f"scenario reference {ref!r} repeats parameter {key!r}"
            )
        params[key] = value
    return name, params


def format_ref(name: str, params: Mapping[str, Any] | None = None) -> str:
    """The canonical ``scenario://`` URI for a (name, params) pair."""
    query = "&".join(f"{k}={params[k]}" for k in params) if params else ""
    return f"{SCHEME}://{name}" + (f"?{query}" if query else "")


def build_scenario(ref: str, **overrides: Any):
    """Build a scenario from a name or reference, plus keyword overrides.

    ``ref`` may carry query parameters (``"generated?seed=3"``); explicit
    keyword overrides win over reference parameters, and a conflict between
    the two spellings of the same parameter is rejected rather than
    silently resolved.
    """
    name, ref_params = parse_ref(ref)
    clash = sorted(set(ref_params) & set(overrides))
    if clash:
        raise ScenarioError(
            f"parameter(s) {clash} given both in the reference {ref!r} and "
            f"as keyword overrides; pick one spelling"
        )
    merged = {**ref_params, **overrides}
    return get(name).build(**merged)


# ---------------------------------------------------------------------------
# Registered scenarios
# ---------------------------------------------------------------------------


@register(
    "pal_decoder",
    description=(
        "the paper's PAL stereo decoder: four streams (2 channels x 2 "
        "stages, 8:1 rate split) sharing the CORDIC + FIR chain"
    ),
    params=(
        Param("audio_rate", int, 44_100, "audio output rate in Hz", minimum=1),
        Param("clock_hz", int, 100_000_000, "system clock in Hz", minimum=1),
        Param("reconfigure", int, 4100, "context-switch cost R_s in cycles",
              minimum=0),
        Param("entry_copy", int, 15, "entry-gateway cycles per sample",
              minimum=1),
        Param("exit_copy", int, 1, "exit-gateway cycles per sample", minimum=1),
        Param("margin_ppm", int, 0, "rate margin in ppm (1270 reproduces the "
              "paper's exact block sizes)", minimum=0),
        Param("eta_stage1", int, 64, "stage-1 block size; 0 = solve via "
              "Algorithm 1", minimum=0),
        Param("eta_stage2", int, 8, "stage-2 block size; 0 = solve via "
              "Algorithm 1", minimum=0),
    ),
    tags=("paper", "real-app"),
)
def _pal_decoder_scenario(
    audio_rate: int,
    clock_hz: int,
    reconfigure: int,
    entry_copy: int,
    exit_copy: int,
    margin_ppm: int,
    eta_stage1: int,
    eta_stage2: int,
):
    from ..api import Scenario
    from .analysis_bridge import pal_gateway_system

    system = pal_gateway_system(
        audio_rate=audio_rate,
        clock_hz=clock_hz,
        reconfigure=reconfigure,
        entry_copy=entry_copy,
        exit_copy=exit_copy,
        rate_margin=Fraction(1) + Fraction(margin_ppm, 1_000_000),
    )
    if (eta_stage1 == 0) != (eta_stage2 == 0):
        raise ScenarioError(
            "eta_stage1 and eta_stage2 must both be pinned or both be 0 "
            "(Algorithm 1 solves all streams together)"
        )
    if eta_stage1:
        system = system.with_block_sizes({
            "ch1.s1": eta_stage1, "ch2.s1": eta_stage1,
            "ch1.s2": eta_stage2, "ch2.s2": eta_stage2,
        })
    return Scenario(system)


@register(
    "product_cipher",
    description=(
        "heterogeneous product-cipher pipeline: N sessions sharing the "
        "key-mix -> S-box -> permute chain (rho_permute = 2)"
    ),
    params=(
        Param("sessions", int, 3, "independent cipher sessions", minimum=1,
              maximum=16),
        Param("eta", int, 24, "session block size; 0 = solve via Algorithm 1",
              minimum=0),
        Param("width", int, 8, "transposition width (eta must divide by it)",
              minimum=1, maximum=64),
        Param("load_pct", int, 30, "aggregate Eq. 5 load across sessions",
              minimum=1, maximum=90),
        Param("reconfigure", int, 300, "context-switch cost in cycles "
              "(dominated by the 256-word S-box)", minimum=0),
        Param("entry_copy", int, 4, "entry-gateway cycles per sample",
              minimum=1),
        Param("exit_copy", int, 1, "exit-gateway cycles per sample", minimum=1),
        Param("sbox_seed", int, 7, "seed of the per-session S-box tables"),
    ),
    tags=("real-app",),
)
def _product_cipher_scenario(
    sessions: int,
    eta: int,
    width: int,
    load_pct: int,
    reconfigure: int,
    entry_copy: int,
    exit_copy: int,
    sbox_seed: int,
):
    from ..api import Scenario
    from .product_cipher import ProductCipherConfig, cipher_gateway_system

    config = ProductCipherConfig(
        sessions=sessions,
        eta=eta if eta else width,
        width=width,
        load_pct=load_pct,
        reconfigure_cycles=reconfigure,
        entry_copy=entry_copy,
        exit_copy=exit_copy,
        sbox_seed=sbox_seed,
    )
    system = cipher_gateway_system(config)
    if eta == 0:
        system = GatewaySystem(
            accelerators=system.accelerators,
            streams=tuple(
                StreamSpec(s.name, s.throughput, s.reconfigure)
                for s in system.streams
            ),
            entry_copy=system.entry_copy,
            exit_copy=system.exit_copy,
            ni_capacity=system.ni_capacity,
        )
    return Scenario(system)


@register(
    "multi_mode",
    description=(
        "adaptive multi-mode graph: per-mode streams join and leave on a "
        "churn schedule with mode-dependent rates and transition delays, "
        "exercising online reconfiguration"
    ),
    params=(
        Param("streams", int, 2, "always-on base streams", minimum=1, maximum=8),
        Param("modes", int, 3, "transient per-mode streams (each joins, then "
              "leaves half a period later)", minimum=1, maximum=8),
        Param("period", int, 2500, "cycles between mode onsets", minimum=200),
        Param("load_pct", int, 25, "aggregate base load", minimum=1, maximum=80),
        Param("rate_step_pct", int, 40, "per-mode rate growth: mode k joins at "
              "base*(1 + k*step/100)", minimum=0, maximum=400),
        Param("reconfigure", int, 120, "base context-switch cost; mode k's "
              "transition delay scales with k", minimum=0),
        Param("entry_copy", int, 6, "entry-gateway cycles per sample", minimum=1),
        Param("eta", int, 8, "base-stream block size", minimum=1),
        Param("blocks", int, 4, "blocks per stream before the run completes",
              minimum=1),
    ),
    tags=("churn", "family"),
)
def _multi_mode_scenario(
    streams: int,
    modes: int,
    period: int,
    load_pct: int,
    rate_step_pct: int,
    reconfigure: int,
    entry_copy: int,
    eta: int,
    blocks: int,
):
    from ..api import Scenario

    c0 = max(entry_copy, 1)
    # base streams share load_pct; each transient mode stream adds a slice
    # of the same order, scaled by its mode index — aggregate load stays
    # well under 1 even with every mode resident
    base_mu = Fraction(load_pct, 100 * c0 * (streams + modes))
    base = tuple(
        StreamSpec(f"base{i}", base_mu, reconfigure, block_size=eta)
        for i in range(streams)
    )
    system = GatewaySystem(
        accelerators=(AcceleratorSpec("acc", 1),),
        streams=base,
        entry_copy=entry_copy,
        exit_copy=1,
    )
    specs = []
    for k in range(modes):
        mu_k = base_mu * Fraction(100 + k * rate_step_pct, 100)
        at_join = (k + 1) * period
        specs.append(FaultSpec(
            kind=STREAM_JOIN,
            at=at_join,
            target=f"mode{k}",
            params={
                "throughput": [mu_k.numerator, mu_k.denominator],
                # mode-dependent transition delay: later modes carry more
                # state and cost more to switch in
                "reconfigure": reconfigure * (k + 1),
            },
        ))
        specs.append(FaultSpec(
            kind=STREAM_LEAVE,
            at=at_join + period // 2,
            target=f"mode{k}",
        ))
    plan = FaultPlan(specs=tuple(specs), seed=modes)
    return Scenario(system).with_faults(plan).with_blocks(blocks)


#: block sizes the generator pins (kept small so a corpus sweep stays fast)
_GEN_ETAS = (2, 3, 4, 6, 8, 12, 16, 24)


def generate(
    seed: int = 0,
    chain_max: int = 3,
    streams_max: int = 4,
    churn_pct: int = 50,
    load_pct_max: int = 55,
    blocks: int = 3,
):
    """Seeded random scenario: chain, streams, rates, churn schedule.

    Deterministic per ``seed`` — the same seed always yields an identical
    :class:`repro.api.Scenario` (system, fault plan and run length), which
    is what lets a generated corpus participate in the sweep engine's
    serial ≡ parallel digest identity.  Every output must pass conformance
    with zero unattributed violations; the property suite and the
    ``SCENARIO_FUZZ_SMOKE`` CI gate enforce it.
    """
    from ..api import Scenario

    if chain_max < 1 or streams_max < 1:
        raise ScenarioError("chain_max and streams_max must be >= 1")
    rng = random.Random(int(seed))
    n_acc = rng.randint(1, chain_max)
    rhos = [rng.choice((1, 1, 2, 3)) for _ in range(n_acc)]
    entry_copy = rng.randint(2, 12)
    exit_copy = rng.randint(1, 3)
    n_streams = rng.randint(1, streams_max)
    load_pct = rng.randint(10, max(10, load_pct_max))
    weights = [rng.randint(1, 5) for _ in range(n_streams)]
    c0 = max(entry_copy, exit_copy, *rhos)
    total_w = sum(weights)
    pin = rng.random() < 0.7 or load_pct > 40
    streams = tuple(
        StreamSpec(
            f"g{i}",
            Fraction(load_pct * w, 100 * c0 * total_w),
            rng.randrange(20, 400, 20),
            block_size=rng.choice(_GEN_ETAS) if pin else None,
        )
        for i, w in enumerate(weights)
    )
    system = GatewaySystem(
        accelerators=tuple(
            AcceleratorSpec(f"acc{i}", rho) for i, rho in enumerate(rhos)
        ),
        streams=streams,
        entry_copy=entry_copy,
        exit_copy=exit_copy,
    )
    scenario = Scenario(system).with_blocks(blocks)

    if rng.randint(1, 100) <= churn_pct:
        specs: list[FaultSpec] = []
        alive_joined: list[str] = []
        joined = 0
        at = rng.randrange(600, 2000, 50)
        for _ in range(rng.randint(1, 3)):
            if alive_joined and rng.random() < 0.4:
                name = alive_joined.pop(rng.randrange(len(alive_joined)))
                specs.append(FaultSpec(kind=STREAM_LEAVE, at=at, target=name))
            else:
                name = f"j{joined}"
                joined += 1
                mu = Fraction(rng.randint(1, 4),
                              rng.choice((10_000, 20_000, 50_000)))
                params: dict[str, Any] = {
                    "throughput": [mu.numerator, mu.denominator],
                    "reconfigure": rng.randrange(20, 200, 20),
                }
                if rng.random() < 0.5:
                    params["block_size"] = rng.choice((2, 4, 8))
                specs.append(FaultSpec(
                    kind=STREAM_JOIN, at=at, target=name, params=params,
                ))
                alive_joined.append(name)
            at += rng.randrange(400, 1500, 100)
        scenario = scenario.with_faults(
            FaultPlan(specs=tuple(specs), seed=int(seed) & 0x7FFFFFFF)
        )
    return scenario


@register(
    "generated",
    description=(
        "seeded random scenario over chain length, stream count, rate "
        "distributions and churn schedules; deterministic per seed and "
        "conformance-clean by construction"
    ),
    params=(
        Param("seed", int, 0, "generator seed (the whole scenario derives "
              "from it)"),
        Param("chain_max", int, 3, "maximum accelerators in the shared chain",
              minimum=1, maximum=6),
        Param("streams_max", int, 4, "maximum multiplexed streams", minimum=1,
              maximum=8),
        Param("churn_pct", int, 50, "probability (percent) of a churn "
              "schedule", minimum=0, maximum=100),
        Param("load_pct_max", int, 55, "upper bound on the aggregate Eq. 5 "
              "load", minimum=10, maximum=80),
        Param("blocks", int, 3, "blocks per stream before the run completes",
              minimum=1),
    ),
    tags=("generator", "fuzz"),
)
def _generated_scenario(**knobs: Any):
    return generate(**knobs)
