"""Synthetic PAL baseband front-end.

The paper's prototype receives a live PAL TV broadcast through an Epiq
FMC-1RX RF front-end; we have no antenna, so this module synthesises the
part of the PAL signal the audio decoder observes (the DESIGN.md
substitution): a complex baseband stream containing

* the two FM **audio carriers** — in PAL B/G stereo (A2), the first carrier
  (offset ``f1`` from the vision carrier, nominally +5.5 MHz) carries L+R
  and the second (``f2``, nominally +5.74 MHz) carries R,
* optionally a crude AM **vision signal** at baseband acting as the in-band
  interferer the low-pass stages must reject.

All frequencies are configurable so tests can run at laptop-friendly sample
rates while keeping the exact decoder chain (mix → LPF↓8 → FM demod → LPF↓8)
and the paper's 64:1 overall rate ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PalChannelPlan", "synthesize_pal_baseband", "make_test_tones"]


@dataclass(frozen=True)
class PalChannelPlan:
    """Frequency plan of the synthetic PAL signal (all in Hz).

    The default instantiates a *scaled* plan: sample rate 64·f_audio with
    carriers placed well inside the band, mirroring the structure (not the
    absolute values) of the 2×FM layout at +5.5/+5.74 MHz.
    """

    sample_rate: float = 64 * 8000.0
    carrier1: float = 128_000.0          # L+R carrier offset
    carrier2: float = 160_000.0          # R carrier offset
    deviation: float = 2_000.0           # FM frequency deviation
    audio_rate: float = 8_000.0
    vision_level: float = 0.0            # amplitude of the AM 'video' clutter
    carrier_level: float = 1.0

    def __post_init__(self) -> None:
        nyq = self.sample_rate / 2
        for f in (self.carrier1, self.carrier2):
            if not 0 < f < nyq:
                raise ValueError(f"carrier {f} Hz outside (0, {nyq}) Hz")
        if self.deviation <= 0:
            raise ValueError("deviation must be positive")
        if self.sample_rate % self.audio_rate:
            raise ValueError("sample_rate must be an integer multiple of audio_rate")

    @property
    def oversample(self) -> int:
        """Input-to-audio rate ratio (64 in the paper's chain: two 8:1s)."""
        return int(self.sample_rate / self.audio_rate)


def _fm_modulate(baseband: np.ndarray, carrier: float, deviation: float,
                 fs: float, level: float) -> np.ndarray:
    """Complex FM signal at ``carrier`` Hz with the given deviation."""
    inst_freq = carrier + deviation * baseband
    phase = 2.0 * np.pi * np.cumsum(inst_freq) / fs
    return level * np.exp(1j * phase)


def synthesize_pal_baseband(
    left: np.ndarray,
    right: np.ndarray,
    plan: PalChannelPlan | None = None,
    noise_level: float = 0.0,
    seed: int = 0,
) -> np.ndarray:
    """Build the complex baseband stream carrying a stereo PAL audio signal.

    ``left``/``right`` are audio-rate signals in [-1, 1]; they are upsampled
    by zero-order hold to the plan's sample rate, FM-modulated onto the two
    carriers (carrier 1: L+R, carrier 2: R — the PAL stereo convention the
    software task inverts), summed with optional AM vision clutter and AWGN.
    """
    plan = plan or PalChannelPlan()
    if len(left) != len(right):
        raise ValueError("left/right audio must have equal length")
    os = plan.oversample
    lr = np.repeat(np.asarray(left, dtype=float) + np.asarray(right, dtype=float), os) / 2.0
    r = np.repeat(np.asarray(right, dtype=float), os)
    fs = plan.sample_rate

    sig = _fm_modulate(lr, plan.carrier1, plan.deviation, fs, plan.carrier_level)
    sig = sig + _fm_modulate(r, plan.carrier2, plan.deviation, fs, plan.carrier_level)

    if plan.vision_level > 0:
        n = np.arange(len(sig))
        # crude AM 'vision' clutter at a low offset frequency
        video = plan.vision_level * (1.0 + 0.5 * np.sin(2 * np.pi * 0.001 * n))
        sig = sig + video * np.exp(2j * np.pi * (plan.carrier1 * 0.05) * n / fs)

    if noise_level > 0:
        rng = np.random.default_rng(seed)
        sig = sig + noise_level * (
            rng.standard_normal(len(sig)) + 1j * rng.standard_normal(len(sig))
        ) / np.sqrt(2)
    return sig


def make_test_tones(
    n_samples: int,
    audio_rate: float = 8000.0,
    f_left: float = 440.0,
    f_right: float = 1000.0,
    amplitude: float = 0.8,
) -> tuple[np.ndarray, np.ndarray]:
    """Distinct L/R sine tones, the standard stereo-separation test signal."""
    t = np.arange(n_samples) / audio_rate
    left = amplitude * np.sin(2 * np.pi * f_left * t)
    right = amplitude * np.sin(2 * np.pi * f_right * t)
    return left, right
