"""The 33-tap complex FIR low-pass filter with built-in down-sampler.

The demonstrator "requires a 33-taps complex FIR filter with built-in
programmable down-sampler" (Section VI-B); the chain uses it twice per
channel, each time decimating by 8 (the paper's 8:1 block-size ratio stems
from exactly this factor).  The filter design is a windowed-sinc low-pass;
coefficients are part of the *configuration* and the delay line plus
decimation phase are the *state* saved/restored on context switches.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .base import KernelError, StreamKernel

__all__ = ["design_lowpass", "FirDecimatorKernel", "fir_decimate_batch", "PAPER_TAPS"]

PAPER_TAPS = 33


def design_lowpass(
    num_taps: int = PAPER_TAPS,
    cutoff: float = 1.0 / 16.0,
    window: str = "hamming",
) -> np.ndarray:
    """Windowed-sinc low-pass design.

    ``cutoff`` is the normalised cutoff frequency (fraction of the sample
    rate, 0 < cutoff < 0.5).  The default 1/16 leaves the band that survives
    an 8:1 decimation.  Returns unit-DC-gain real coefficients.
    """
    if num_taps < 1:
        raise KernelError(f"need at least one tap, got {num_taps}")
    if not 0.0 < cutoff < 0.5:
        raise KernelError(f"cutoff must be in (0, 0.5), got {cutoff}")
    n = np.arange(num_taps) - (num_taps - 1) / 2.0
    h = 2.0 * cutoff * np.sinc(2.0 * cutoff * n)
    if window == "hamming":
        h *= np.hamming(num_taps)
    elif window == "blackman":
        h *= np.blackman(num_taps)
    elif window != "rect":
        raise KernelError(f"unknown window {window!r}")
    return h / np.sum(h)


class FirDecimatorKernel(StreamKernel):
    """FIR low-pass + decimator: one output every ``factor`` input samples.

    Configuration: coefficients + decimation factor.  State: the complex
    delay line and the decimation phase counter — this is the bulk of the
    context the gateway moves over the configuration bus (33 complex words).
    """

    rho = 1

    def __init__(
        self,
        coefficients: np.ndarray | None = None,
        factor: int = 8,
        cutoff: float | None = None,
    ) -> None:
        if factor < 1:
            raise KernelError(f"decimation factor must be >= 1, got {factor}")
        if coefficients is None:
            coefficients = design_lowpass(
                PAPER_TAPS, cutoff if cutoff is not None else 0.8 / (2 * factor)
            )
        self.coefficients = np.asarray(coefficients, dtype=float)
        if self.coefficients.ndim != 1 or len(self.coefficients) == 0:
            raise KernelError("coefficients must be a non-empty 1-D array")
        self.factor = int(factor)
        self.delay = np.zeros(len(self.coefficients), dtype=complex)
        self.phase = 0
        self._init_kwargs = {"coefficients": self.coefficients, "factor": factor}

    @property
    def output_ratio(self):
        from fractions import Fraction

        return Fraction(1, self.factor)

    def process(self, sample: complex | float) -> list:
        self.delay[1:] = self.delay[:-1]
        self.delay[0] = complex(sample)
        self.phase += 1
        if self.phase >= self.factor:
            self.phase = 0
            return [complex(np.dot(self.coefficients, self.delay))]
        return []

    def get_state(self) -> dict[str, Any]:
        return {
            "coefficients": self.coefficients.copy(),
            "factor": self.factor,
            "delay": self.delay.copy(),
            "phase": self.phase,
        }

    def set_state(self, state: dict[str, Any]) -> None:
        try:
            coeff = np.asarray(state["coefficients"], dtype=float)
            delay = np.asarray(state["delay"], dtype=complex)
            factor = int(state["factor"])
            phase = int(state["phase"])
        except KeyError as err:
            raise KernelError(f"bad FIR state: missing {err}") from err
        if len(coeff) != len(delay):
            raise KernelError("FIR state: delay line and coefficients disagree")
        self.coefficients = coeff
        self.delay = delay
        self.factor = factor
        self.phase = phase


def fir_decimate_batch(
    samples: np.ndarray, coefficients: np.ndarray, factor: int
) -> np.ndarray:
    """Vectorised reference of :class:`FirDecimatorKernel`.

    Matches the kernel exactly: output ``k`` is the dot product of the
    (reversed) delay line after input sample ``k·factor + factor - 1``.
    """
    x = np.asarray(samples, dtype=complex)
    h = np.asarray(coefficients, dtype=float)
    full = np.convolve(x, h)  # full[i] = sum_j h[j] x[i-j]
    taps_out = full[: len(x)]
    return taps_out[factor - 1 :: factor]
