"""Software audio tasks of the PAL decoder and audio quality metrics.

The only software task in the demonstrator's data path reconstructs the left
channel: "Reconstruction of the left channel from the (L+R) and (R) channels
is performed in a software task" (Section VI-A).  The quality metrics let
the examples and tests assert that the full chain — synthetic front-end,
shared accelerators, gateways — actually decodes audio, not just tokens.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "reconstruct_stereo",
    "normalize_fm_output",
    "tone_frequency",
    "tone_snr",
    "correlation",
]


def reconstruct_stereo(lpr: np.ndarray, r: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """PAL stereo matrix: channel 1 carries (L+R)/2, channel 2 carries R.

    ``L = 2·(L+R)/2 − R``; returns ``(left, right)`` trimmed to the common
    length (the two chains may deliver off-by-one sample counts).
    """
    n = min(len(lpr), len(r))
    lpr = np.asarray(lpr[:n], dtype=float)
    r = np.asarray(r[:n], dtype=float)
    left = 2.0 * lpr - r
    return left, r


def normalize_fm_output(x: np.ndarray, deviation: float, fs: float) -> np.ndarray:
    """Scale a discriminator output (rad/sample) back to audio in [-1, 1].

    A deviation of ``deviation`` Hz at sample rate ``fs`` produces a phase
    increment of ``2π·deviation/fs`` per sample; dividing by that recovers
    the modulating signal.  Any DC (carrier frequency offset after mixing)
    is removed.
    """
    x = np.asarray(x, dtype=float)
    scale = 2.0 * np.pi * deviation / fs
    y = x / scale
    return y - np.mean(y)


def tone_frequency(signal: np.ndarray, sample_rate: float) -> float:
    """Dominant frequency of a (windowed) signal via FFT peak."""
    x = np.asarray(signal, dtype=float)
    x = x - np.mean(x)
    if len(x) < 8:
        raise ValueError("signal too short for a frequency estimate")
    spec = np.abs(np.fft.rfft(x * np.hanning(len(x))))
    peak = int(np.argmax(spec[1:])) + 1
    return peak * sample_rate / len(x)


def tone_snr(signal: np.ndarray, tone_hz: float, sample_rate: float,
             bins: int = 2) -> float:
    """SNR (dB) of a sine at ``tone_hz`` against everything else."""
    x = np.asarray(signal, dtype=float)
    x = x - np.mean(x)
    spec = np.abs(np.fft.rfft(x * np.hanning(len(x)))) ** 2
    k = int(round(tone_hz * len(x) / sample_rate))
    lo, hi = max(k - bins, 0), min(k + bins + 1, len(spec))
    sig = float(np.sum(spec[lo:hi]))
    noise = float(np.sum(spec)) - sig
    if noise <= 0:
        return float("inf")
    return 10.0 * np.log10(sig / noise)


def correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Peak normalised cross-correlation over small lags (alignment-robust)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    n = min(len(a), len(b))
    if n < 4:
        raise ValueError("signals too short to correlate")
    a, b = a[:n] - np.mean(a[:n]), b[:n] - np.mean(b[:n])
    denom = np.sqrt(np.sum(a * a) * np.sum(b * b))
    if denom == 0:
        return 0.0
    best = 0.0
    for lag in range(-8, 9):
        if lag >= 0:
            num = float(np.sum(a[lag:] * b[: n - lag]))
        else:
            num = float(np.sum(a[: n + lag] * b[-lag:]))
        best = max(best, abs(num) / denom)
    return best
