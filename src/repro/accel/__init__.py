"""Stream-processing accelerator kernels (CORDIC, FIR+down-sampler) and the
synthetic PAL front-end replacing the paper's RF hardware."""

from .audio import (
    correlation,
    normalize_fm_output,
    reconstruct_stereo,
    tone_frequency,
    tone_snr,
)
from .base import KernelError, StreamKernel, run_kernel
from .cipher import (
    KeyMixKernel,
    PermuteBlockKernel,
    SBoxKernel,
    block_permutation,
    invert_table,
    product_decrypt,
    product_encrypt,
    sbox_table,
)
from .cordic import (
    CORDIC_ITERATIONS,
    CordicKernel,
    FMDiscriminatorKernel,
    MixerKernel,
    cordic_gain,
    cordic_rotate,
    cordic_vector,
    fm_demod_batch,
    mix_batch,
)
from .fir import PAPER_TAPS, FirDecimatorKernel, design_lowpass, fir_decimate_batch
from .frontend import PalChannelPlan, make_test_tones, synthesize_pal_baseband

__all__ = [
    "CORDIC_ITERATIONS",
    "CordicKernel",
    "FMDiscriminatorKernel",
    "FirDecimatorKernel",
    "KernelError",
    "KeyMixKernel",
    "MixerKernel",
    "PAPER_TAPS",
    "PalChannelPlan",
    "PermuteBlockKernel",
    "SBoxKernel",
    "StreamKernel",
    "block_permutation",
    "cordic_gain",
    "cordic_rotate",
    "cordic_vector",
    "correlation",
    "design_lowpass",
    "fir_decimate_batch",
    "fm_demod_batch",
    "invert_table",
    "make_test_tones",
    "mix_batch",
    "normalize_fm_output",
    "product_decrypt",
    "product_encrypt",
    "sbox_table",
    "reconstruct_stereo",
    "run_kernel",
    "synthesize_pal_baseband",
    "tone_frequency",
    "tone_snr",
]
