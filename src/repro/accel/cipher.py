"""Product-cipher stream kernels: key-mix, S-box substitution, permutation.

The second real application beyond the PAL decoder: a heterogeneous
product-cipher pipeline in the style of Nawinne et al. (see PAPERS.md) —
alternating key mixing, substitution and transposition rounds, each stage a
coarsely-programmable stream accelerator behind the entry/exit-gateway
pair.  Three kernel types implement the classic product-cipher structure
over byte streams:

* :class:`KeyMixKernel` — XOR with a repeating key schedule (an involution:
  the same kernel decrypts),
* :class:`SBoxKernel` — byte substitution through a seeded 256-entry
  permutation table; the table *is* the kernel state, so a context switch
  moves ~256 words over the configuration bus — a deliberately heavy
  reconfiguration cost compared to the PAL kernels,
* :class:`PermuteBlockKernel` — transposition: buffers ``width`` samples
  and emits them permuted, the only kernel here with bursty output.

All three satisfy the :class:`~repro.accel.base.StreamKernel` contract
(functionally deterministic, picklable state snapshots), so they can be
context-switched between multiplexed cipher sessions exactly like the
CORDIC/FIR pair.  :func:`product_encrypt` / :func:`product_decrypt` give
the golden-reference chain used by the functional tests.
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import Any, Iterable, Sequence

import numpy as np

from .base import KernelError, StreamKernel

__all__ = [
    "KeyMixKernel",
    "SBoxKernel",
    "PermuteBlockKernel",
    "sbox_table",
    "invert_table",
    "block_permutation",
    "product_encrypt",
    "product_decrypt",
]


def sbox_table(seed: int) -> tuple[int, ...]:
    """A seeded byte-substitution table: a permutation of ``range(256)``."""
    rng = random.Random(int(seed))
    table = list(range(256))
    rng.shuffle(table)
    return tuple(table)


def invert_table(table: Sequence[int]) -> tuple[int, ...]:
    """The inverse of a substitution/permutation table."""
    n = len(table)
    if sorted(table) != list(range(n)):
        raise KernelError(f"not a permutation of range({n})")
    inverse = [0] * n
    for i, v in enumerate(table):
        inverse[v] = i
    return tuple(inverse)


def block_permutation(width: int, seed: int) -> tuple[int, ...]:
    """A seeded transposition pattern over a ``width``-sample block."""
    if width < 1:
        raise KernelError(f"permutation width must be >= 1, got {width}")
    rng = random.Random(int(seed) ^ 0x5EED)
    perm = list(range(width))
    rng.shuffle(perm)
    return tuple(perm)


def _as_byte(sample: Any) -> int:
    """Coerce an incoming stream word to a byte (cipher kernels are 8-bit)."""
    value = int(sample.real) if isinstance(sample, complex) else int(sample)
    return value & 0xFF


class KeyMixKernel(StreamKernel):
    """XOR the stream with a repeating key schedule.

    An involution: feeding ciphertext through the same key position
    recovers the plaintext, so encryption and decryption share the kernel.
    The mutable state is the key plus the schedule position — a cheap
    context switch compared to :class:`SBoxKernel`.
    """

    rho = 1

    def __init__(self, key: Sequence[int] = (0x3A, 0xC5, 0x96, 0x0F)) -> None:
        key = tuple(int(k) & 0xFF for k in key)
        if not key:
            raise KernelError("key must have at least one byte")
        self._init_kwargs = {"key": key}
        self.key = key
        self.pos = 0

    def process(self, sample) -> list:
        out = _as_byte(sample) ^ self.key[self.pos]
        self.pos = (self.pos + 1) % len(self.key)
        return [out]

    def get_state(self) -> dict[str, Any]:
        return {"key": list(self.key), "pos": self.pos}

    def set_state(self, state: dict[str, Any]) -> None:
        try:
            self.key = tuple(int(k) & 0xFF for k in state["key"])
            self.pos = int(state["pos"])
        except (KeyError, TypeError) as err:
            raise KernelError(f"bad KeyMixKernel state: {err}") from err
        if not self.key or not 0 <= self.pos < len(self.key):
            raise KernelError(f"bad KeyMixKernel state: pos {self.pos} for "
                              f"{len(self.key)}-byte key")


class SBoxKernel(StreamKernel):
    """Byte substitution through a 256-entry table.

    The table is part of the state snapshot, so every context switch
    transfers ~256 words over the configuration bus — the product cipher's
    reconfiguration time is dominated by this kernel, giving the scenario a
    markedly different ``R_s`` profile from the PAL decoder.
    """

    rho = 1

    def __init__(self, table: Sequence[int] | None = None, seed: int = 0) -> None:
        if table is None:
            table = sbox_table(seed)
        self._init_kwargs = {"table": tuple(table)}
        self.set_state({"table": list(table)})

    def process(self, sample) -> list:
        return [self.table[_as_byte(sample)]]

    def get_state(self) -> dict[str, Any]:
        return {"table": list(self.table)}

    def set_state(self, state: dict[str, Any]) -> None:
        try:
            table = tuple(int(v) for v in state["table"])
        except (KeyError, TypeError) as err:
            raise KernelError(f"bad SBoxKernel state: {err}") from err
        if sorted(table) != list(range(256)):
            raise KernelError("S-box table must be a permutation of range(256)")
        self.table = table


class PermuteBlockKernel(StreamKernel):
    """Transposition stage: emit every ``width`` samples permuted.

    Output is bursty — nothing for ``width - 1`` samples, then the whole
    permuted block at once — but the long-run :attr:`output_ratio` stays 1,
    so the exit gateway's drained-block accounting is unchanged.  ``rho``
    defaults to 2 cycles/sample, making the cipher chain heterogeneous
    (the analysis' ``c0 = max(ε, ρ_A, δ)`` no longer collapses to ε).
    """

    rho = 2

    def __init__(self, perm: Sequence[int] = (1, 3, 0, 2), rho: int | None = None) -> None:
        perm = tuple(int(p) for p in perm)
        self._init_kwargs = {"perm": perm}
        if rho is not None:
            self.rho = int(rho)
        self.set_state({"perm": list(perm), "buffer": []})

    @property
    def width(self) -> int:
        return len(self.perm)

    def process(self, sample) -> list:
        self.buffer.append(_as_byte(sample))
        if len(self.buffer) < self.width:
            return []
        block, self.buffer = self.buffer, []
        return [block[i] for i in self.perm]

    def get_state(self) -> dict[str, Any]:
        return {"perm": list(self.perm), "buffer": list(self.buffer)}

    def set_state(self, state: dict[str, Any]) -> None:
        try:
            perm = tuple(int(p) for p in state["perm"])
            buffer = [int(b) & 0xFF for b in state["buffer"]]
        except (KeyError, TypeError) as err:
            raise KernelError(f"bad PermuteBlockKernel state: {err}") from err
        if sorted(perm) != list(range(len(perm))):
            raise KernelError(
                f"perm must be a permutation of range({len(perm)}), got {perm}"
            )
        if len(buffer) >= len(perm):
            raise KernelError("buffered residue longer than the permutation width")
        self.perm = perm
        self.buffer = buffer

    @property
    def output_ratio(self) -> Fraction:
        return Fraction(1)


# ---------------------------------------------------------------- functional
def _chain(data: Iterable, kernels: Sequence[StreamKernel]) -> np.ndarray:
    samples: Iterable = data
    for kernel in kernels:
        out: list[int] = []
        for s in samples:
            out.extend(kernel.process(s))
        samples = out
    return np.asarray(list(samples), dtype=np.int64)


def product_encrypt(
    data: Iterable,
    key: Sequence[int] = (0x3A, 0xC5, 0x96, 0x0F),
    sbox_seed: int = 0,
    perm: Sequence[int] = (1, 3, 0, 2),
) -> np.ndarray:
    """Golden-reference product cipher: key-mix → S-box → permute."""
    return _chain(data, [
        KeyMixKernel(key),
        SBoxKernel(seed=sbox_seed),
        PermuteBlockKernel(perm),
    ])


def product_decrypt(
    data: Iterable,
    key: Sequence[int] = (0x3A, 0xC5, 0x96, 0x0F),
    sbox_seed: int = 0,
    perm: Sequence[int] = (1, 3, 0, 2),
) -> np.ndarray:
    """Inverse chain: un-permute → inverse S-box → key-mix."""
    table = invert_table(sbox_table(sbox_seed))
    return _chain(data, [
        PermuteBlockKernel(invert_table(perm)),
        SBoxKernel(table),
        KeyMixKernel(key),
    ])
