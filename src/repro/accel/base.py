"""Stream-kernel interface implemented by every accelerator function.

The paper's accelerators are "coarsely programmable" stream processors: they
consume an incoming data stream and produce an outgoing one, can stall on
full/empty FIFOs, and expose their **state and configuration** over a bus so
the entry-gateway can context-switch them between multiplexed streams
(Section IV-B).  This module fixes the Python contract:

* ``process(sample) -> list``: consume one sample, produce zero or more
  output samples (decimators produce less than one per input),
* ``get_state()`` / ``set_state()``: a picklable snapshot whose size (in
  words) determines the reconfiguration cost over the configuration bus,
* ``rho``: the paper's firing duration in cycles per sample (1 for both
  prototype accelerators).

Kernels must be *functionally deterministic* — a requirement of the
refinement theory the temporal analysis rests on (Section III).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from fractions import Fraction
from typing import Any, Iterable

import numpy as np

__all__ = ["StreamKernel", "KernelError", "run_kernel"]


class KernelError(RuntimeError):
    """Raised on kernel misuse (bad configuration, bad state snapshot)."""


class StreamKernel(ABC):
    """A stateful one-in/zero-or-more-out stream processing function."""

    #: firing duration in cycles per input sample (paper: 1 for both kernels)
    rho: int = 1

    @abstractmethod
    def process(self, sample: complex | float) -> list:
        """Consume one sample; return produced output samples (maybe none)."""

    @abstractmethod
    def get_state(self) -> dict[str, Any]:
        """Snapshot of all mutable state + configuration."""

    @abstractmethod
    def set_state(self, state: dict[str, Any]) -> None:
        """Restore a snapshot taken by :meth:`get_state`."""

    def reset(self) -> None:
        """Return to the initial state (default: restore a fresh snapshot)."""
        self.set_state(type(self)(**getattr(self, "_init_kwargs", {})).get_state())

    @property
    def state_words(self) -> int:
        """State size in bus words — the cost of one save or restore."""
        return _count_words(self.get_state())

    @property
    def output_ratio(self) -> Fraction:
        """Average output samples per input sample (1/factor for decimators).

        The gateways use this to know how many output samples a block of
        ``η_s`` inputs produces (the exit-gateway must count them to detect
        that the pipeline drained).
        """
        return Fraction(1)


def _count_words(obj: Any) -> int:
    if isinstance(obj, dict):
        return sum(_count_words(v) for v in obj.values())
    if isinstance(obj, (list, tuple)):
        return sum(_count_words(v) for v in obj)
    if isinstance(obj, np.ndarray):
        return int(obj.size) * (2 if np.iscomplexobj(obj) else 1)
    if isinstance(obj, complex):
        return 2
    return 1


def run_kernel(kernel: StreamKernel, samples: Iterable) -> np.ndarray:
    """Feed a whole sequence through a kernel; convenience for tests/examples."""
    out: list = []
    for s in samples:
        out.extend(kernel.process(s))
    return np.asarray(out)
