"""CORDIC arithmetic and the two CORDIC-based accelerators of the PAL app.

The demonstrator (Section VI-A) uses one shared "channel mixer accelerator
containing a CORDIC" (to shift an audio carrier to baseband) and the same
CORDIC block in a second role "to convert the data stream from FM radio to
normal audio" (an FM discriminator).  Both are built here on an iterative
CORDIC core:

* :func:`cordic_rotate` — rotation mode: rotate ``(x, y)`` by an angle,
* :func:`cordic_vector` — vectoring mode: magnitude + phase of ``(x, y)``,
* :class:`MixerKernel` — NCO + complex rotation (down-conversion),
* :class:`FMDiscriminatorKernel` — phase extraction + differentiation.

The kernels follow the :class:`~repro.accel.base.StreamKernel` contract so
they can be mounted on simulated accelerator tiles and context-switched by
the gateways.  Batch (NumPy) equivalents are provided for the fast
functional path; the tests assert batch/streaming equivalence.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from .base import KernelError, StreamKernel

__all__ = [
    "CORDIC_ITERATIONS",
    "cordic_gain",
    "cordic_rotate",
    "cordic_vector",
    "MixerKernel",
    "FMDiscriminatorKernel",
    "CordicKernel",
    "mix_batch",
    "fm_demod_batch",
]

CORDIC_ITERATIONS = 16
_ANGLES = [math.atan(2.0 ** -i) for i in range(CORDIC_ITERATIONS)]


def cordic_gain(iterations: int = CORDIC_ITERATIONS) -> float:
    """Aggregate CORDIC magnitude gain ``K = Π √(1 + 2^-2i)``."""
    g = 1.0
    for i in range(iterations):
        g *= math.sqrt(1.0 + 2.0 ** (-2 * i))
    return g


_GAIN = cordic_gain()


def _quantize(v: float, fractional_bits: int | None) -> float:
    """Round to a fixed-point grid of 2^-bits (None = double precision).

    Models the hardware datapath: the FPGA CORDIC uses fixed-point
    arithmetic, so intermediate x/y/z values live on this grid.
    """
    if fractional_bits is None:
        return v
    scale = float(1 << fractional_bits)
    return math.floor(v * scale + 0.5) / scale


def cordic_rotate(
    x: float,
    y: float,
    angle: float,
    iterations: int = CORDIC_ITERATIONS,
    fractional_bits: int | None = None,
):
    """Rotate vector ``(x, y)`` by ``angle`` radians (rotation mode).

    Handles the full circle by pre-rotating ±π/2 quadrants, then runs the
    shift-add iteration and compensates the gain.  Accuracy is ~2^-iterations.
    """
    # reduce angle into [-pi, pi)
    angle = (angle + math.pi) % (2 * math.pi) - math.pi
    # pre-rotate into the CORDIC convergence range [-pi/2, pi/2]
    if angle > math.pi / 2:
        x, y = -y, x
        angle -= math.pi / 2
    elif angle < -math.pi / 2:
        x, y = y, -x
        angle += math.pi / 2
    z = angle
    for i in range(iterations):
        d = 1.0 if z >= 0 else -1.0
        x, y = x - d * y * 2.0 ** -i, y + d * x * 2.0 ** -i
        if fractional_bits is not None:
            x, y = _quantize(x, fractional_bits), _quantize(y, fractional_bits)
        z -= d * _ANGLES[i]
    k = cordic_gain(iterations)
    return _quantize(x / k, fractional_bits), _quantize(y / k, fractional_bits)


def cordic_vector(
    x: float,
    y: float,
    iterations: int = CORDIC_ITERATIONS,
    fractional_bits: int | None = None,
):
    """Magnitude and phase of ``(x, y)`` (vectoring mode).

    Returns ``(magnitude, phase)`` with phase in ``(-π, π]``.
    """
    # pre-rotate left half-plane into the convergence range
    phase_offset = 0.0
    if x < 0:
        if y >= 0:
            x, y = y, -x
            phase_offset = math.pi / 2
        else:
            x, y = -y, x
            phase_offset = -math.pi / 2
    z = 0.0
    for i in range(iterations):
        d = -1.0 if y >= 0 else 1.0
        x, y = x - d * y * 2.0 ** -i, y + d * x * 2.0 ** -i
        if fractional_bits is not None:
            x, y = _quantize(x, fractional_bits), _quantize(y, fractional_bits)
            z = _quantize(z, fractional_bits)
        z -= d * _ANGLES[i]
    k = cordic_gain(iterations)
    return _quantize(x / k, fractional_bits), _quantize(z + phase_offset, fractional_bits)


class MixerKernel(StreamKernel):
    """NCO + CORDIC rotator: multiply the stream by ``e^{-j·2π·f/fs·n}``.

    Configuration: the normalised mixing frequency ``freq/fs`` (turns per
    sample).  State: the phase accumulator.  Both are part of the context
    that the gateway saves/restores on a stream switch.
    """

    rho = 1

    def __init__(self, freq_over_fs: float = 0.0) -> None:
        if not -0.5 <= freq_over_fs <= 0.5:
            raise KernelError(f"normalised frequency out of range: {freq_over_fs}")
        self.freq_over_fs = float(freq_over_fs)
        self.phase = 0.0
        self._init_kwargs = {"freq_over_fs": freq_over_fs}

    def process(self, sample: complex | float) -> list:
        s = complex(sample)
        angle = -2.0 * math.pi * self.phase
        x, y = cordic_rotate(s.real, s.imag, angle)
        self.phase = (self.phase + self.freq_over_fs) % 1.0
        return [complex(x, y)]

    def get_state(self) -> dict[str, Any]:
        return {"freq_over_fs": self.freq_over_fs, "phase": self.phase}

    def set_state(self, state: dict[str, Any]) -> None:
        try:
            self.freq_over_fs = float(state["freq_over_fs"])
            self.phase = float(state["phase"])
        except KeyError as err:
            raise KernelError(f"bad mixer state: missing {err}") from err


class FMDiscriminatorKernel(StreamKernel):
    """FM demodulation: CORDIC phase extraction + differentiation.

    Output is the wrapped phase increment per sample, proportional to the
    instantaneous frequency (scaled so that a deviation of ``f_dev``
    at sample rate ``fs`` yields ``2π·f_dev/fs``).  State: previous phase.
    """

    rho = 1

    def __init__(self) -> None:
        self.prev_phase = 0.0
        self._init_kwargs: dict[str, Any] = {}

    def process(self, sample: complex | float) -> list:
        s = complex(sample)
        _mag, phase = cordic_vector(s.real, s.imag)
        delta = phase - self.prev_phase
        # wrap into (-pi, pi]
        delta = (delta + math.pi) % (2.0 * math.pi) - math.pi
        self.prev_phase = phase
        return [delta]

    def get_state(self) -> dict[str, Any]:
        return {"prev_phase": self.prev_phase}

    def set_state(self, state: dict[str, Any]) -> None:
        try:
            self.prev_phase = float(state["prev_phase"])
        except KeyError as err:
            raise KernelError(f"bad discriminator state: missing {err}") from err


class CordicKernel(StreamKernel):
    """The *configurable* CORDIC accelerator of the demonstrator.

    The paper's system contains **one** CORDIC accelerator that serves both
    roles of Fig. 10 — channel mixing (rotation mode) and FM demodulation
    (vectoring mode) — depending on the configuration loaded by the
    entry-gateway for the current stream.  This class is what actually sits
    on the shared accelerator tile; ``mode`` is part of the saved/restored
    context, so the same silicon alternates between a mixer for the
    stage-1 streams and a discriminator for the stage-2 streams.
    """

    rho = 1
    MODES = ("mix", "fm")

    def __init__(
        self,
        mode: str = "mix",
        freq_over_fs: float = 0.0,
        fractional_bits: int | None = None,
    ) -> None:
        if mode not in self.MODES:
            raise KernelError(f"unknown CORDIC mode {mode!r}; choose from {self.MODES}")
        if not -0.5 <= freq_over_fs <= 0.5:
            raise KernelError(f"normalised frequency out of range: {freq_over_fs}")
        if fractional_bits is not None and not 1 <= fractional_bits <= 52:
            raise KernelError(f"fractional_bits out of range: {fractional_bits}")
        self.mode = mode
        self.freq_over_fs = float(freq_over_fs)
        self.fractional_bits = fractional_bits
        self.phase = 0.0        # NCO accumulator (mix mode)
        self.prev_phase = 0.0   # previous sample phase (fm mode)
        self._init_kwargs = {
            "mode": mode,
            "freq_over_fs": freq_over_fs,
            "fractional_bits": fractional_bits,
        }

    def process(self, sample: complex | float) -> list:
        s = complex(sample)
        if self.mode == "mix":
            x, y = cordic_rotate(
                s.real, s.imag, -2.0 * math.pi * self.phase,
                fractional_bits=self.fractional_bits,
            )
            self.phase = (self.phase + self.freq_over_fs) % 1.0
            return [complex(x, y)]
        _mag, phase = cordic_vector(
            s.real, s.imag, fractional_bits=self.fractional_bits
        )
        delta = (phase - self.prev_phase + math.pi) % (2.0 * math.pi) - math.pi
        self.prev_phase = phase
        return [delta]

    def get_state(self) -> dict[str, Any]:
        return {
            "mode": self.mode,
            "freq_over_fs": self.freq_over_fs,
            "phase": self.phase,
            "prev_phase": self.prev_phase,
            "fractional_bits": self.fractional_bits,
        }

    def set_state(self, state: dict[str, Any]) -> None:
        try:
            mode = state["mode"]
            if mode not in self.MODES:
                raise KernelError(f"unknown CORDIC mode {mode!r}")
            self.mode = mode
            self.freq_over_fs = float(state["freq_over_fs"])
            self.phase = float(state["phase"])
            self.prev_phase = float(state["prev_phase"])
            self.fractional_bits = state.get("fractional_bits", self.fractional_bits)
        except KeyError as err:
            raise KernelError(f"bad CORDIC state: missing {err}") from err


# ------------------------------------------------------- batch equivalents
def mix_batch(samples: np.ndarray, freq_over_fs: float, phase0: float = 0.0) -> np.ndarray:
    """Vectorised ideal mixer (reference for :class:`MixerKernel`)."""
    n = np.arange(len(samples))
    lo = np.exp(-2j * np.pi * (phase0 + freq_over_fs * n))
    return np.asarray(samples, dtype=complex) * lo


def fm_demod_batch(samples: np.ndarray, prev_phase: float = 0.0) -> np.ndarray:
    """Vectorised ideal FM discriminator (reference for the kernel)."""
    phases = np.angle(np.asarray(samples, dtype=complex))
    all_phases = np.concatenate(([prev_phase], phases))
    delta = np.diff(all_phases)
    return (delta + np.pi) % (2.0 * np.pi) - np.pi
