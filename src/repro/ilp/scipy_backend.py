"""Lowering of :class:`~repro.ilp.model.Model` onto ``scipy.optimize.milp``.

HiGHS (shipped inside SciPy) solves the mixed-integer program directly; this
backend is the default for :mod:`repro.core.blocksize_ilp`.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from .model import Model, ModelError
from .solution import Solution, SolverError, Status

__all__ = ["solve_scipy"]


def _lower(model: Model):
    """Build (c, const, A, lb, ub, bounds, integrality, order) matrices."""
    if model.objective is None:
        raise ModelError(f"model {model.name!r} has no objective")
    order = sorted(model.variables)
    index = {name: i for i, name in enumerate(order)}
    n = len(order)
    if n == 0:
        raise ModelError(f"model {model.name!r} has no variables")

    sign = 1.0 if model.sense == "min" else -1.0
    c = np.zeros(n)
    for name, coef in model.objective.coeffs.items():
        c[index[name]] = sign * float(coef)

    rows, lbs, ubs = [], [], []
    for con in model.constraints:
        row = np.zeros(n)
        for name, coef in con.expr.coeffs.items():
            row[index[name]] = float(coef)
        rhs = -float(con.expr.constant)
        if con.sense == "<=":
            lbs.append(-np.inf)
            ubs.append(rhs)
        elif con.sense == ">=":
            lbs.append(rhs)
            ubs.append(np.inf)
        else:
            lbs.append(rhs)
            ubs.append(rhs)
        rows.append(row)

    lo = np.array(
        [-np.inf if model.variables[v].lo is None else float(model.variables[v].lo) for v in order]
    )
    hi = np.array(
        [np.inf if model.variables[v].hi is None else float(model.variables[v].hi) for v in order]
    )
    integrality = np.array([1 if model.variables[v].integer else 0 for v in order])
    return c, rows, lbs, ubs, lo, hi, integrality, order, sign


def solve_scipy(model: Model, time_limit: float | None = None) -> Solution:
    """Solve with SciPy's HiGHS MILP solver."""
    c, rows, lbs, ubs, lo, hi, integrality, order, sign = _lower(model)
    constraints = (
        [LinearConstraint(np.array(rows), np.array(lbs), np.array(ubs))] if rows else []
    )
    options = {}
    if time_limit is not None:
        options["time_limit"] = time_limit
    try:
        res = milp(
            c,
            constraints=constraints,
            bounds=Bounds(lo, hi),
            integrality=integrality,
            options=options,
        )
    except Exception as err:  # pragma: no cover - scipy internal failure
        raise SolverError(f"scipy milp failed: {err}") from err

    if res.status == 2:
        return Solution(Status.INFEASIBLE, backend="scipy")
    if res.status == 3:
        return Solution(Status.UNBOUNDED, backend="scipy")
    if res.status == 1:  # iteration/time limit
        return Solution(Status.LIMIT, backend="scipy")
    if res.status == 4:  # HiGHS: "unbounded or infeasible"
        return Solution(Status.UNBOUNDED, backend="scipy")
    if not res.success:  # pragma: no cover - defensive
        raise SolverError(f"scipy milp: unexpected status {res.status}: {res.message}")

    values = {name: float(x) for name, x in zip(order, res.x)}
    objective = sign * float(res.fun)
    # snap integer variables that HiGHS returns within tolerance
    for name in order:
        if model.variables[name].integer:
            values[name] = float(round(values[name]))
    return Solution(Status.OPTIMAL, objective=objective, values=values, backend="scipy")
