"""A small integer-linear-programming modelling layer.

The paper's Algorithm 1 is an ILP over the block sizes ``η_s``.  This module
provides the modelling vocabulary (variables, linear expressions, constraints
and a model container) used by :mod:`repro.core.blocksize_ilp`, decoupled
from any particular solver.  Two interchangeable backends solve the models:

* :mod:`repro.ilp.scipy_backend` — lowers to ``scipy.optimize.milp`` (HiGHS),
* :mod:`repro.ilp.branch_bound` — a pure-Python branch-and-bound over the LP
  relaxation (``scipy.optimize.linprog``), kept as an independent
  cross-check and fallback.

Expressions support natural arithmetic::

    m = Model("blocks")
    eta = [m.int_var(f"eta{s}", lo=1) for s in range(4)]
    m.add(eta[0] - 2 * sum_expr(eta) >= 5, name="tp0")
    m.minimize(sum_expr(eta))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from numbers import Real
from typing import Iterable, Mapping

__all__ = [
    "Var",
    "LinExpr",
    "Constraint",
    "Model",
    "ModelError",
    "sum_expr",
]

Number = (int, float, Fraction)


class ModelError(ValueError):
    """Raised for malformed models (unknown variables, empty objectives…)."""


class LinExpr:
    """An affine expression: ``Σ coeff_i · var_i + constant``.

    Immutable; arithmetic returns new expressions.  Coefficients are kept as
    exact :class:`~fractions.Fraction` where possible.
    """

    __slots__ = ("coeffs", "constant")

    def __init__(
        self,
        coeffs: Mapping[str, Fraction] | None = None,
        constant: Fraction | float | int = 0,
    ) -> None:
        self.coeffs: dict[str, Fraction] = {
            k: _frac(v) for k, v in (coeffs or {}).items() if v != 0
        }
        self.constant = _frac(constant)

    # -- arithmetic ------------------------------------------------------
    def __add__(self, other) -> "LinExpr":
        other = as_expr(other)
        coeffs = dict(self.coeffs)
        for k, v in other.coeffs.items():
            coeffs[k] = coeffs.get(k, Fraction(0)) + v
        return LinExpr(coeffs, self.constant + other.constant)

    __radd__ = __add__

    def __neg__(self) -> "LinExpr":
        return LinExpr({k: -v for k, v in self.coeffs.items()}, -self.constant)

    def __sub__(self, other) -> "LinExpr":
        return self + (-as_expr(other))

    def __rsub__(self, other) -> "LinExpr":
        return as_expr(other) + (-self)

    def __mul__(self, factor) -> "LinExpr":
        if not isinstance(factor, Number):
            raise ModelError("linear expressions can only be scaled by constants")
        f = _frac(factor)
        return LinExpr({k: v * f for k, v in self.coeffs.items()}, self.constant * f)

    __rmul__ = __mul__

    def __truediv__(self, factor) -> "LinExpr":
        if not isinstance(factor, Number):
            raise ModelError("linear expressions can only be divided by constants")
        return self * (Fraction(1) / _frac(factor))

    # -- relations ---------------------------------------------------------
    def __le__(self, other) -> "Constraint":
        return Constraint(self - as_expr(other), "<=")

    def __ge__(self, other) -> "Constraint":
        return Constraint(self - as_expr(other), ">=")

    def __eq__(self, other) -> "Constraint":  # type: ignore[override]
        return Constraint(self - as_expr(other), "==")

    __hash__ = None  # type: ignore[assignment]

    # -- evaluation ---------------------------------------------------------
    def value(self, assignment: Mapping[str, Real]) -> Fraction:
        """Evaluate under a variable assignment."""
        total = self.constant
        for k, v in self.coeffs.items():
            if k not in assignment:
                raise ModelError(f"no value for variable {k!r}")
            total += v * _frac(assignment[k])
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        terms = [f"{v}*{k}" for k, v in sorted(self.coeffs.items())]
        if self.constant or not terms:
            terms.append(str(self.constant))
        return " + ".join(terms)


class Var(LinExpr):
    """A decision variable (an expression with a single unit coefficient)."""

    __slots__ = ("name", "lo", "hi", "integer")

    def __init__(
        self,
        name: str,
        lo: float | int | None = 0,
        hi: float | int | None = None,
        integer: bool = True,
    ) -> None:
        super().__init__({name: Fraction(1)}, 0)
        self.name = name
        self.lo = lo
        self.hi = hi
        self.integer = integer
        if lo is not None and hi is not None and lo > hi:
            raise ModelError(f"variable {name!r}: empty domain [{lo}, {hi}]")


@dataclass(frozen=True, eq=False)
class Constraint:
    """``expr (<=|>=|==) 0`` in normalised form, optionally named."""

    expr: LinExpr
    sense: str
    name: str = ""

    def __post_init__(self) -> None:
        if self.sense not in ("<=", ">=", "=="):
            raise ModelError(f"bad constraint sense {self.sense!r}")

    def named(self, name: str) -> "Constraint":
        return Constraint(self.expr, self.sense, name)

    def satisfied(self, assignment: Mapping[str, Real], tol: float = 1e-9) -> bool:
        v = float(self.expr.value(assignment))
        if self.sense == "<=":
            return v <= tol
        if self.sense == ">=":
            return v >= -tol
        return abs(v) <= tol


def _frac(x) -> Fraction:
    if isinstance(x, Fraction):
        return x
    if isinstance(x, int):
        return Fraction(x)
    if isinstance(x, float):
        return Fraction(x).limit_denominator(10**12)
    raise ModelError(f"not a number: {x!r}")


def as_expr(x) -> LinExpr:
    """Coerce a constant or expression into a :class:`LinExpr`."""
    if isinstance(x, LinExpr):
        return x
    if isinstance(x, Number):
        return LinExpr({}, x)
    raise ModelError(f"cannot interpret {x!r} as a linear expression")


def sum_expr(items: Iterable[LinExpr | int | float]) -> LinExpr:
    """Sum of expressions (avoids ``sum()``'s 0 + expr start issue cleanly)."""
    total = LinExpr()
    for item in items:
        total = total + as_expr(item)
    return total


@dataclass
class Model:
    """An ILP: variables, constraints and one objective."""

    name: str = "model"
    variables: dict[str, Var] = field(default_factory=dict)
    constraints: list[Constraint] = field(default_factory=list)
    objective: LinExpr | None = None
    sense: str = "min"

    # -- building ----------------------------------------------------------
    def int_var(self, name: str, lo: int | None = 0, hi: int | None = None) -> Var:
        """Declare an integer variable."""
        return self._add_var(Var(name, lo, hi, integer=True))

    def real_var(self, name: str, lo: float | None = 0, hi: float | None = None) -> Var:
        """Declare a continuous variable."""
        return self._add_var(Var(name, lo, hi, integer=False))

    def _add_var(self, var: Var) -> Var:
        if var.name in self.variables:
            raise ModelError(f"duplicate variable {var.name!r}")
        self.variables[var.name] = var
        return var

    def add(self, constraint: Constraint, name: str | None = None) -> Constraint:
        """Add a constraint (checks that all variables are declared)."""
        if not isinstance(constraint, Constraint):
            raise ModelError(
                "add() expects a Constraint (did you compare with a plain number "
                "on the left of <=/>=?)"
            )
        unknown = set(constraint.expr.coeffs) - set(self.variables)
        if unknown:
            raise ModelError(f"constraint uses undeclared variables: {sorted(unknown)}")
        if name:
            constraint = constraint.named(name)
        self.constraints.append(constraint)
        return constraint

    def minimize(self, expr: LinExpr) -> None:
        self._set_objective(expr, "min")

    def maximize(self, expr: LinExpr) -> None:
        self._set_objective(expr, "max")

    def _set_objective(self, expr: LinExpr, sense: str) -> None:
        expr = as_expr(expr)
        unknown = set(expr.coeffs) - set(self.variables)
        if unknown:
            raise ModelError(f"objective uses undeclared variables: {sorted(unknown)}")
        self.objective = expr
        self.sense = sense

    # -- checking ------------------------------------------------------------
    def check(self, assignment: Mapping[str, Real], tol: float = 1e-9) -> list[str]:
        """Names/indices of constraints violated by ``assignment``."""
        violated = []
        missing = {v for v in self.variables if v not in assignment}
        for i, c in enumerate(self.constraints):
            if set(c.expr.coeffs) & missing:
                continue  # reported below as missing:<var>
            if not c.satisfied(assignment, tol):
                violated.append(c.name or f"#{i}")
        for v in self.variables.values():
            x = assignment.get(v.name)
            if x is None:
                violated.append(f"missing:{v.name}")
                continue
            if v.lo is not None and x < v.lo - tol:
                violated.append(f"lb:{v.name}")
            if v.hi is not None and x > v.hi + tol:
                violated.append(f"ub:{v.name}")
            if v.integer and abs(x - round(x)) > tol:
                violated.append(f"int:{v.name}")
        return violated
