"""Pure-Python branch-and-bound ILP solver over the LP relaxation.

An independent second backend for :class:`~repro.ilp.model.Model`: the LP
relaxations are solved with ``scipy.optimize.linprog`` (HiGHS simplex) and
integrality is restored by best-first branch-and-bound on the most
fractional variable.  It exists to cross-check :mod:`repro.ilp.scipy_backend`
(the two must agree on every Algorithm-1 instance — asserted in the test
suite) and to make the block-size computation independent of SciPy's MILP
feature set.
"""

from __future__ import annotations

import heapq
import itertools
import math

import numpy as np
from scipy.optimize import linprog

from .model import Model, ModelError
from .solution import Solution, SolverError, Status

__all__ = ["solve_branch_bound"]

_INT_TOL = 1e-6


def _lower(model: Model):
    if model.objective is None:
        raise ModelError(f"model {model.name!r} has no objective")
    order = sorted(model.variables)
    if not order:
        raise ModelError(f"model {model.name!r} has no variables")
    index = {name: i for i, name in enumerate(order)}
    n = len(order)
    sign = 1.0 if model.sense == "min" else -1.0
    c = np.zeros(n)
    for name, coef in model.objective.coeffs.items():
        c[index[name]] = sign * float(coef)

    a_ub: list[np.ndarray] = []
    b_ub: list[float] = []
    a_eq: list[np.ndarray] = []
    b_eq: list[float] = []
    for con in model.constraints:
        row = np.zeros(n)
        for name, coef in con.expr.coeffs.items():
            row[index[name]] = float(coef)
        rhs = -float(con.expr.constant)
        if con.sense == "<=":
            a_ub.append(row)
            b_ub.append(rhs)
        elif con.sense == ">=":
            a_ub.append(-row)
            b_ub.append(-rhs)
        else:
            a_eq.append(row)
            b_eq.append(rhs)
    bounds = [
        (
            None if model.variables[v].lo is None else float(model.variables[v].lo),
            None if model.variables[v].hi is None else float(model.variables[v].hi),
        )
        for v in order
    ]
    return c, a_ub, b_ub, a_eq, b_eq, bounds, order, sign


def _solve_lp(c, a_ub, b_ub, a_eq, b_eq, bounds):
    res = linprog(
        c,
        A_ub=np.array(a_ub) if a_ub else None,
        b_ub=np.array(b_ub) if b_ub else None,
        A_eq=np.array(a_eq) if a_eq else None,
        b_eq=np.array(b_eq) if b_eq else None,
        bounds=bounds,
        method="highs",
    )
    return res


def solve_branch_bound(model: Model, max_nodes: int = 100_000) -> Solution:
    """Best-first branch-and-bound; exact on models HiGHS LP solves exactly."""
    c, a_ub, b_ub, a_eq, b_eq, bounds, order, sign = _lower(model)
    int_mask = [model.variables[v].integer for v in order]

    root = _solve_lp(c, a_ub, b_ub, a_eq, b_eq, bounds)
    if root.status == 2:
        return Solution(Status.INFEASIBLE, backend="bnb")
    if root.status == 3:
        return Solution(Status.UNBOUNDED, backend="bnb")
    if root.status != 0:  # pragma: no cover - defensive
        raise SolverError(f"linprog failed at root: {root.message}")

    counter = itertools.count()
    # heap of (lp_bound, tiebreak, bounds, lp_result)
    heap = [(root.fun, next(counter), bounds, root)]
    best_obj = math.inf
    best_x = None
    nodes = 0

    while heap:
        lp_bound, _tie, nb, res = heapq.heappop(heap)
        if lp_bound >= best_obj - 1e-12:
            continue  # pruned: cannot improve the incumbent
        nodes += 1
        if nodes > max_nodes:
            break

        # most fractional integer variable
        frac_idx, frac_dist = -1, 0.0
        for i, is_int in enumerate(int_mask):
            if not is_int:
                continue
            x = res.x[i]
            dist = abs(x - round(x))
            if dist > _INT_TOL and dist > frac_dist:
                frac_idx, frac_dist = i, dist

        if frac_idx < 0:
            # integral solution
            if res.fun < best_obj:
                best_obj = res.fun
                best_x = res.x.copy()
            continue

        x = res.x[frac_idx]
        for lo_new, hi_new in (
            (nb[frac_idx][0], math.floor(x)),
            (math.ceil(x), nb[frac_idx][1]),
        ):
            lo_cur, hi_cur = nb[frac_idx]
            lo_eff = lo_new if lo_new is not None else lo_cur
            hi_eff = hi_new if hi_new is not None else hi_cur
            if (
                lo_eff is not None
                and hi_eff is not None
                and lo_eff > hi_eff
            ):
                continue
            child_bounds = list(nb)
            child_bounds[frac_idx] = (lo_eff, hi_eff)
            child = _solve_lp(c, a_ub, b_ub, a_eq, b_eq, child_bounds)
            if child.status == 0 and child.fun < best_obj - 1e-12:
                heapq.heappush(heap, (child.fun, next(counter), child_bounds, child))

    if best_x is None:
        if nodes > max_nodes:
            return Solution(Status.LIMIT, backend="bnb", nodes_explored=nodes)
        return Solution(Status.INFEASIBLE, backend="bnb", nodes_explored=nodes)

    values = {}
    for name, x, is_int in zip(order, best_x, int_mask):
        values[name] = float(round(x)) if is_int else float(x)
    status = Status.OPTIMAL if nodes <= max_nodes else Status.LIMIT
    return Solution(
        status,
        objective=sign * float(best_obj),
        values=values,
        backend="bnb",
        nodes_explored=nodes,
    )
