"""Integer Linear Programming layer: modelling language + two backends.

``solve(model)`` picks the default backend (SciPy/HiGHS MILP); pass
``backend="bnb"`` for the pure-Python branch-and-bound cross-check.
"""

from .branch_bound import solve_branch_bound
from .model import Constraint, LinExpr, Model, ModelError, Var, as_expr, sum_expr
from .scipy_backend import solve_scipy
from .solution import Solution, SolverError, Status

__all__ = [
    "Constraint",
    "LinExpr",
    "Model",
    "ModelError",
    "Solution",
    "SolverError",
    "Status",
    "Var",
    "as_expr",
    "solve",
    "solve_branch_bound",
    "solve_scipy",
    "sum_expr",
]

_BACKENDS = {
    "scipy": solve_scipy,
    "bnb": solve_branch_bound,
}


def solve(model: Model, backend: str = "scipy", **kwargs) -> Solution:
    """Solve a model with the named backend (``"scipy"`` or ``"bnb"``)."""
    try:
        fn = _BACKENDS[backend]
    except KeyError:
        raise SolverError(f"unknown backend {backend!r}; choose from {sorted(_BACKENDS)}")
    return fn(model, **kwargs)
