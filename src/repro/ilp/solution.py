"""Solver-independent solution record."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Solution", "SolverError", "Status"]


class SolverError(RuntimeError):
    """Raised when a backend cannot process the model at all."""


class Status:
    """Solution status constants."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    LIMIT = "limit"  # node/iteration limit hit before proving optimality


@dataclass
class Solution:
    """Outcome of solving a :class:`~repro.ilp.model.Model`."""

    status: str
    objective: float | None = None
    values: dict[str, float] = field(default_factory=dict)
    backend: str = ""
    nodes_explored: int = 0

    @property
    def optimal(self) -> bool:
        return self.status == Status.OPTIMAL

    def __getitem__(self, var_name: str) -> float:
        return self.values[var_name]

    def as_ints(self) -> dict[str, int]:
        """Values rounded to integers (valid for integer variables)."""
        return {k: int(round(v)) for k, v in self.values.items()}
