"""End-to-end verification of a block-size assignment.

Combines the closed-form bounds (Eq. 2–5), the CSDF model (Fig. 5), the SDF
abstraction (Fig. 7) and the refinement theory into one report:

1. Eq. 5 holds for every stream (closed form);
2. the SDF model's state-space throughput confirms Eq. 5 (dataflow check);
3. the CSDF model's *measured* block time never exceeds τ̂ (the bound is
   conservative);
4. the CSDF model refines the SDF abstraction: every output token is
   produced no later than the abstraction predicts.

Item 3+4 are the executable version of the paper's refinement chain
``hardware ⊑ CSDF ⊑ SDF``; the hardware end of the chain is exercised by the
architecture simulator tests in ``tests/integration``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

from ..dataflow import execute, refines_times
from .csdf_builder import build_stream_csdf, measure_block_time
from .params import GatewaySystem
from .sdf_abstraction import build_stream_sdf, verify_with_sdf_model
from .timing import guaranteed_throughput, tau_hat, throughput_satisfied

__all__ = ["StreamVerification", "VerificationReport", "verify_system"]


@dataclass(frozen=True)
class StreamVerification:
    """Per-stream verification outcome."""

    stream: str
    eta: int
    mu: Fraction
    guaranteed: Fraction
    eq5_ok: bool
    sdf_rate: Fraction
    sdf_ok: bool
    tau_bound: int
    tau_measured: float
    tau_ok: bool
    refinement_ok: bool

    @property
    def ok(self) -> bool:
        return self.eq5_ok and self.sdf_ok and self.tau_ok and self.refinement_ok


@dataclass
class VerificationReport:
    """Aggregate over all streams of a gateway system."""

    streams: list[StreamVerification] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(s.ok for s in self.streams)

    def summary(self) -> str:
        lines = ["stream       η      μ[s/cyc]   η/γ[s/cyc]  eq5  sdf  τ≤τ̂  ⊑sdf"]
        for s in self.streams:
            lines.append(
                f"{s.stream:<10} {s.eta:>6}  {float(s.mu):>9.6f}  "
                f"{float(s.guaranteed):>9.6f}  {'ok' if s.eq5_ok else 'NO':>3}  "
                f"{'ok' if s.sdf_ok else 'NO':>3}  {'ok' if s.tau_ok else 'NO':>3}  "
                f"{'ok' if s.refinement_ok else 'NO':>4}"
            )
        lines.append("PASS" if self.ok else "FAIL")
        return "\n".join(lines)


def _csdf_refines_sdf(system: GatewaySystem, stream_name: str, blocks: int = 3) -> bool:
    """Check token-production refinement CSDF ⊑ SDF for the first blocks.

    Both models run with a fully pre-queued producer and a free consumer so
    that the shared chain is the only constraint; the CSDF exit-gateway's
    sample-by-sample production times are compared against the SDF actor's
    atomic end-of-firing times, token by token.
    """
    s = system.stream(stream_name)
    eta = s.block_size or 1
    fast = Fraction(1, 1000)  # producer/consumer far faster than the chain

    csdf, info = build_stream_csdf(
        system, stream_name,
        producer_period=fast, consumer_period=fast,
        alpha0=blocks * eta + eta, alpha3=blocks * eta + eta,
        prequeued=blocks * eta + eta,
    )
    sdf = build_stream_sdf(
        system, stream_name,
        producer_period=fast, consumer_period=fast,
        alpha0=blocks * eta + eta, alpha3=blocks * eta + eta,
    )
    fine = execute(csdf, iterations=blocks, record=True)
    coarse = execute(sdf, iterations=blocks, record=True)

    fine_tokens = fine.production_times(info.exit)  # one token per vG1 firing
    coarse_tokens: list[float] = []
    for t in coarse.production_times("vS"):
        coarse_tokens.extend([t] * eta)  # atomic block production
    n = min(len(fine_tokens), len(coarse_tokens), blocks * eta)
    return bool(refines_times(fine_tokens[:n], coarse_tokens[:n]))


def verify_system(system: GatewaySystem, blocks: int = 2) -> VerificationReport:
    """Run the full verification battery over every stream."""
    system.require_block_sizes()
    report = VerificationReport()
    for s in system.streams:
        eq5 = throughput_satisfied(system, s.name)
        sdf_ok, sdf_rate = verify_with_sdf_model(system, s.name)

        # conservativeness of τ̂: measure the CSDF model with a pre-queued
        # block and maximum interference folded into phase 0
        csdf, info = build_stream_csdf(
            system, s.name,
            producer_period=Fraction(1, 1000), consumer_period=Fraction(1, 1000),
            alpha0=2 * (s.block_size or 1), alpha3=2 * (s.block_size or 1),
            prequeued=2 * (s.block_size or 1),
        )
        taus = measure_block_time(csdf, info, blocks=blocks)
        measured = max(taus)
        # τ̂ compares against the block time *without* the other-stream wait
        # (ε̂ is accounted separately in Eq. 3); subtract it from the model.
        from .timing import epsilon_hat

        eps = epsilon_hat(system, s.name) if len(system.streams) > 1 else 0
        bound = tau_hat(system, s.name)
        tau_ok = measured - eps <= bound + 1e-9

        refinement_ok = _csdf_refines_sdf(system, s.name)

        report.streams.append(
            StreamVerification(
                stream=s.name,
                eta=s.block_size or 0,
                mu=s.throughput,
                guaranteed=guaranteed_throughput(system, s.name),
                eq5_ok=eq5,
                sdf_rate=sdf_rate,
                sdf_ok=sdf_ok,
                tau_bound=bound,
                tau_measured=measured - eps,
                tau_ok=tau_ok,
                refinement_ok=refinement_ok,
            )
        )
    return report
