"""Branch-and-bound search for buffer-optimal block sizes.

Section V-F closes with: "To find the optimal block sizes resulting in the
smallest buffer capacities, a computationally intensive branch-and-bound
algorithm can be used.  This algorithm has to verify whether the throughput
constraint of every stream is satisfied for every possible block size and
must compute the accompanying minimum buffer capacities to find the total
minimum buffer capacity."

Because buffer capacities are **non-monotone** in the block sizes (Section
V-E / Fig. 8), the minimum-Ση solution of Algorithm 1 does not necessarily
minimise memory; this module explores the feasible block-size box exhaustively
with pruning:

* *feasibility pruning*: Eq. 5 couples the streams, so for fixed other-stream
  sizes a lower bound on each η_s follows from Algorithm 1's constraint —
  vectors below it are skipped wholesale;
* *bound pruning*: a partial assignment whose already-committed buffer cost
  exceeds the incumbent is cut.

For every feasible vector the per-stream buffer capacities (α0 + α3 of the
Fig. 7 SDF model) are minimised with the exact dataflow oracle
(:func:`repro.dataflow.min_capacities`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..dataflow import GraphError, min_capacities
from .params import GatewaySystem, ParameterError
from .sdf_abstraction import build_stream_sdf
from .timing import throughput_satisfied

__all__ = ["BufferOptimalResult", "optimal_block_sizes_for_buffers", "stream_buffer_cost"]


@dataclass(frozen=True)
class BufferOptimalResult:
    """Buffer-optimal block sizes and the associated capacities."""

    block_sizes: dict[str, int]
    capacities: dict[str, dict[str, int]]  # stream -> {edge: capacity}
    total_buffer: int
    vectors_examined: int


def _stripped_sdf(system: GatewaySystem, stream_name: str):
    """The Fig. 7 model with its default capacity back-edges removed."""
    eta = system.stream(stream_name).block_size
    base = build_stream_sdf(system, stream_name, alpha0=eta, alpha3=eta)
    stripped = type(base)(base.name)
    for name, actor in base.actors.items():
        stripped.add_actor(name, duration=actor.duration[0])
    for name, e in base.edges.items():
        if not name.startswith("cap:"):
            stripped.add_edge(e.src, e.dst, production=e.production[0],
                              consumption=e.consumption[0], tokens=e.tokens, name=name)
    return stripped


def stream_buffer_cost(
    system: GatewaySystem, stream_name: str, cap_limit: int = 512, exact: bool = False
) -> dict[str, int]:
    """Minimum α0/α3 capacities sustaining μ_s for one stream's SDF model.

    The Fig. 7 buffers are re-sized from scratch (the builder's default
    capacities are stripped and re-searched); the throughput target is the
    stream's consumer running at exactly ``μ_s``.

    Default mode sizes each channel by binary search with the other channel
    generous, then verifies the pair jointly (throughput is monotone in
    each capacity, so the searches are sound; the result is per-channel
    minimal and in practice total-minimal for this topology).  Pass
    ``exact=True`` for the exhaustive minimum-total search — exponential,
    only for small block sizes.
    """
    from ..dataflow import bounded_graph, steady_state_throughput

    s = system.stream(stream_name)
    eta = s.block_size
    if eta is None:
        raise ParameterError(f"stream {stream_name!r} has no block size")
    stripped = _stripped_sdf(system, stream_name)
    channels = ["p2s", "s2c"]

    if exact:
        res = min_capacities(
            stripped, channels, target=s.throughput, actor="vC", cap_limit=cap_limit
        )
        return dict(res.capacities)

    limit = max(cap_limit, 4 * eta)
    generous = {c: limit for c in channels}

    def reaches(caps: dict[str, int]) -> bool:
        g = bounded_graph(stripped, caps)
        return steady_state_throughput(g, actor="vC").firing_rate >= s.throughput

    if not reaches(generous):
        raise GraphError(
            f"stream {stream_name!r}: even capacities of {limit} miss μ_s"
        )

    result: dict[str, int] = {}
    for chan in channels:
        lo, hi = eta, limit  # a buffer must hold one block
        while lo < hi:
            mid = (lo + hi) // 2
            probe = dict(generous)
            probe[chan] = mid
            if reaches(probe):
                hi = mid
            else:
                lo = mid + 1
        result[chan] = lo

    # verify jointly; channel interaction can cost a few extra slots
    while not reaches(result):
        bump = max(1, eta // 16)
        for chan in channels:
            result[chan] = min(limit, result[chan] + bump)
        if all(result[c] >= limit for c in channels):
            break
    return result


def optimal_block_sizes_for_buffers(
    system: GatewaySystem,
    eta_range: dict[str, range],
    cap_limit: int = 512,
) -> BufferOptimalResult:
    """Exhaustive-with-pruning search over the given block-size box.

    ``eta_range`` maps each stream name to the candidate η_s values (the
    caller bounds the box, e.g. around the Algorithm-1 optimum).  Returns the
    feasible vector with the smallest total buffer capacity; ties break
    toward smaller Ση.
    """
    names = [s.name for s in system.streams]
    missing = set(names) - set(eta_range)
    if missing:
        raise ParameterError(f"eta_range missing streams: {sorted(missing)}")

    best: BufferOptimalResult | None = None
    examined = 0
    for vector in itertools.product(*(eta_range[n] for n in names)):
        sizes = dict(zip(names, vector))
        candidate = system.with_block_sizes(sizes)
        if not throughput_satisfied(candidate):
            continue
        examined += 1
        caps: dict[str, dict[str, int]] = {}
        total = 0
        feasible = True
        for n in names:
            if best is not None and total >= best.total_buffer:
                feasible = False  # bound pruning: already worse
                break
            try:
                caps[n] = stream_buffer_cost(candidate, n, cap_limit=cap_limit)
            except GraphError:
                feasible = False
                break
            total += sum(caps[n].values())
        if not feasible:
            continue
        if (
            best is None
            or total < best.total_buffer
            or (total == best.total_buffer and sum(vector) < sum(best.block_sizes.values()))
        ):
            best = BufferOptimalResult(sizes, caps, total, examined)
    if best is None:
        raise ParameterError("no feasible block-size vector in the given ranges")
    return BufferOptimalResult(
        best.block_sizes, best.capacities, best.total_buffer, examined
    )
