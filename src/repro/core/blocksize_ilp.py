"""Algorithm 1 — the ILP computing minimum block sizes.

Substituting Eq. 4 into Eq. 5 yields, for every stream ``s ∈ S``:

    η_s  ≥  μ_s · Σ_{i∈S} [ R_i + (η_i + F) · c0 ]
    ⇔  η_s − c0·μ_s·Σ_{i∈S}(η_i + F)  ≥  μ_s · Σ_{i∈S} R_i

with ``c0 = max(ε, ρ_A, δ)`` and flush term ``F`` (= 2 for one accelerator).
The paper prints the right-hand constant as ``c1 = R_s``; the substitution
above gives ``c1 = Σ_i R_i``, which coincides only under the (paper's
prototype) assumption of equal reconfiguration times when the sum is meant.
``c1_mode`` selects the general correct form (default) or the paper's
literal one.

The objective minimises ``Σ_s η_s`` (Algorithm 1).  Infeasibility has a
clean interpretation: the per-sample load ``c0 · Σ μ_i`` must stay below 1
(the shared chain is a single server); as it approaches 1, block sizes blow
up like ``1/(1 − load)``, and beyond it no block size helps.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from fractions import Fraction
from math import ceil

from ..ilp import Model, Status, solve, sum_expr
from .params import GatewaySystem, ParameterError

__all__ = [
    "BlockSizeResult",
    "closed_form_block_sizes",
    "compute_block_sizes",
    "resolve_block_sizes",
    "build_block_size_model",
    "sharing_load",
    "system_fingerprint",
]


@dataclass(frozen=True)
class BlockSizeResult:
    """Solution of Algorithm 1."""

    block_sizes: dict[str, int]
    objective: int
    feasible: bool
    backend: str
    load: Fraction
    #: identity of the (stream set, costs) the solution is valid for; set by
    #: :func:`resolve_block_sizes` so unchanged re-solves short-circuit
    fingerprint: tuple | None = field(default=None, compare=False)
    #: True when :func:`resolve_block_sizes` reused or bounded the search
    #: with a previous solution
    warm_start: bool = field(default=False, compare=False)

    @property
    def total(self) -> int:
        return sum(self.block_sizes.values())


def sharing_load(system: GatewaySystem) -> Fraction:
    """Aggregate per-sample load ``c0 · Σ_s μ_s`` on the shared chain.

    Block-size computation is feasible iff this is strictly below 1.
    """
    return system.c0 * sum((s.throughput for s in system.streams), Fraction(0))


def build_block_size_model(
    system: GatewaySystem,
    c1_mode: str = "sum",
    eta_max: int | None = None,
) -> Model:
    """Construct the Algorithm-1 ILP over variables ``eta:<stream>``."""
    if c1_mode not in ("sum", "paper"):
        raise ParameterError(f"c1_mode must be 'sum' or 'paper', got {c1_mode!r}")
    c0 = system.c0
    flush = system.flush_stages
    m = Model("algorithm1")
    etas = {
        s.name: m.int_var(f"eta:{s.name}", lo=1, hi=eta_max) for s in system.streams
    }
    r_sum = sum(s.reconfigure for s in system.streams)
    for s in system.streams:
        c1 = r_sum if c1_mode == "sum" else s.reconfigure
        mu = s.throughput
        lhs = etas[s.name] - c0 * mu * sum_expr(etas[i.name] + flush for i in system.streams)
        m.add(lhs >= mu * c1, name=f"tp:{s.name}")
    m.minimize(sum_expr(etas.values()))
    return m


def compute_block_sizes(
    system: GatewaySystem,
    backend: str = "scipy",
    c1_mode: str = "sum",
    eta_max: int | None = None,
) -> BlockSizeResult:
    """Solve Algorithm 1 and return minimum block sizes.

    Raises :class:`ParameterError` with the load diagnosis when infeasible.
    """
    load = sharing_load(system)
    model = build_block_size_model(system, c1_mode=c1_mode, eta_max=eta_max)
    sol = solve(model, backend=backend)
    if sol.status != Status.OPTIMAL:
        if load >= 1:
            raise ParameterError(
                f"infeasible: aggregate load c0·Σμ = {float(load):.4f} ≥ 1 — the "
                "shared chain cannot serve the requested rates at any block size"
            )
        raise ParameterError(f"block-size ILP not solved to optimality: {sol.status}")
    sizes = {
        s.name: int(round(sol[f"eta:{s.name}"])) for s in system.streams
    }
    return BlockSizeResult(
        block_sizes=sizes,
        objective=int(round(sol.objective or 0)),
        feasible=True,
        backend=sol.backend,
        load=load,
    )


def closed_form_block_sizes(
    system: GatewaySystem,
    c1_mode: str = "sum",
    eta_max: int | None = None,
) -> dict[str, int] | None:
    """Conservative feasible Eq. 5 block sizes, without touching a solver.

    Relaxing the integrality of Algorithm 1 gives a closed form: summing
    ``η_s = μ_s·(c1_s + c0·(T + F·n))`` over all streams and solving for the
    total ``T = Σ η_s`` yields

        T* = (Σ_s μ_s·c1_s + c0·F·n·Σ_s μ_s) / (1 − load)

    and each ``η_s`` follows by substitution.  Ceiling every η grows the
    round slightly, so a few monotone fix-up sweeps re-check the exact
    integer constraint until stable.  The result satisfies every Eq. 5
    constraint but is not minimal — it is the *conservative* answer an
    admission-control path can serve while the exact solver is unavailable
    (tripped circuit breaker, solver timeout).

    Returns ``None`` when no assignment can be certified: the load is ≥ 1
    (genuinely infeasible at any block size), a size exceeds ``eta_max``,
    or the fix-up fails to settle.
    """
    if c1_mode not in ("sum", "paper"):
        raise ParameterError(f"c1_mode must be 'sum' or 'paper', got {c1_mode!r}")
    load = sharing_load(system)
    if load >= 1:
        return None
    c0 = system.c0
    flush = system.flush_stages
    n = len(system.streams)
    r_sum = sum(s.reconfigure for s in system.streams)

    def c1(spec) -> int:
        return r_sum if c1_mode == "sum" else spec.reconfigure

    mu_sum = sum((s.throughput for s in system.streams), Fraction(0))
    t_star = (
        sum((s.throughput * c1(s) for s in system.streams), Fraction(0))
        + c0 * flush * n * mu_sum
    ) / (1 - load)
    sizes = {
        s.name: max(1, ceil(s.throughput * (c1(s) + c0 * (t_star + flush * n))))
        for s in system.streams
    }
    settled = False
    for _ in range(8 * n + 64):
        changed = False
        for s in system.streams:
            others = sum(v for k, v in sizes.items() if k != s.name)
            den = 1 - c0 * s.throughput
            if den <= 0:
                return None
            need = max(1, ceil(
                s.throughput * (c1(s) + c0 * (others + flush * n)) / den
            ))
            if sizes[s.name] < need:
                sizes[s.name] = need
                changed = True
        if not changed:
            settled = True
            break
    if not settled:
        return None
    if eta_max is not None and any(v > eta_max for v in sizes.values()):
        return None
    return sizes


def system_fingerprint(system: GatewaySystem, c1_mode: str = "sum") -> tuple:
    """Everything the Algorithm-1 solution depends on, as a hashable key.

    Two systems with equal fingerprints have identical constraint sets, so
    a previous solution can be reused verbatim.
    """
    return (
        c1_mode,
        system.entry_copy,
        system.exit_copy,
        tuple((a.name, a.rho) for a in system.accelerators),
        tuple(sorted((s.name, s.throughput, s.reconfigure) for s in system.streams)),
    )


def _seed_candidate(
    system: GatewaySystem, previous: BlockSizeResult, c1_mode: str
) -> dict[str, int] | None:
    """A feasible candidate assignment grown from ``previous``, or None.

    Surviving streams keep their previous η; each other stream gets the
    closed-form single-unknown solution with the rest held fixed.  A few
    fix-up sweeps propagate the round growth; the candidate is returned
    only once every constraint holds.
    """
    c0 = system.c0
    flush = system.flush_stages
    n = len(system.streams)
    r_sum = sum(s.reconfigure for s in system.streams)
    sizes = {
        s.name: previous.block_sizes[s.name]
        for s in system.streams
        if s.name in previous.block_sizes
    }

    def needed(spec, total_others: int) -> int | None:
        # η_s ≥ μ_s·(c1 + c0·(Σ_others + η_s + F·n)) solved for η_s
        c1 = r_sum if c1_mode == "sum" else spec.reconfigure
        mu = spec.throughput
        denom = 1 - c0 * mu
        if denom <= 0:
            return None
        return max(1, ceil(mu * (c1 + c0 * (total_others + flush * n)) / denom))

    for _ in range(2 * n + 2):
        changed = False
        for spec in system.streams:
            others = sum(v for k, v in sizes.items() if k != spec.name)
            eta = needed(spec, others)
            if eta is None:
                return None
            if sizes.get(spec.name, 0) < eta:
                sizes[spec.name] = eta
                changed = True
        if not changed:
            return sizes
    return None


def resolve_block_sizes(
    system: GatewaySystem,
    previous: BlockSizeResult | None = None,
    backend: str = "scipy",
    c1_mode: str = "sum",
    eta_max: int | None = None,
) -> BlockSizeResult:
    """Warm-start incremental re-solve of Algorithm 1 for online mode changes.

    Identical stream set and costs (matched by :func:`system_fingerprint`)
    → the previous solution is returned unchanged (idempotence: the online
    path never churns block sizes without cause).  Otherwise a feasible
    candidate grown from the previous solution tightens the per-variable
    upper bound ``η_s ≤ μ_s·(c1 + c0·(T_c + F·n))`` before the exact solve,
    shrinking the branch-and-bound search space; the result is optimal
    either way because the candidate's total upper-bounds the optimum.
    """
    fp = system_fingerprint(system, c1_mode=c1_mode)
    if previous is not None and previous.fingerprint == fp:
        return replace(previous, warm_start=True)
    bound = eta_max
    warm = False
    if previous is not None:
        candidate = _seed_candidate(system, previous, c1_mode)
        if candidate is not None:
            c0 = system.c0
            flush = system.flush_stages
            n = len(system.streams)
            total = sum(candidate.values())
            r_sum = sum(s.reconfigure for s in system.streams)
            per_var = []
            for s in system.streams:
                c1 = r_sum if c1_mode == "sum" else s.reconfigure
                per_var.append(ceil(s.throughput * (c1 + c0 * (total + flush * n))))
            derived = max(max(per_var), max(candidate.values()))
            bound = derived if eta_max is None else min(eta_max, derived)
            warm = True
    try:
        result = compute_block_sizes(
            system, backend=backend, c1_mode=c1_mode, eta_max=bound
        )
    except ParameterError:
        if bound == eta_max:
            raise
        # the derived cap was too tight for the solver; fall back to the
        # caller's (or unbounded) search space
        result = compute_block_sizes(
            system, backend=backend, c1_mode=c1_mode, eta_max=eta_max
        )
        warm = False
    return replace(result, fingerprint=fp, warm_start=warm)
