"""Algorithm 1 — the ILP computing minimum block sizes.

Substituting Eq. 4 into Eq. 5 yields, for every stream ``s ∈ S``:

    η_s  ≥  μ_s · Σ_{i∈S} [ R_i + (η_i + F) · c0 ]
    ⇔  η_s − c0·μ_s·Σ_{i∈S}(η_i + F)  ≥  μ_s · Σ_{i∈S} R_i

with ``c0 = max(ε, ρ_A, δ)`` and flush term ``F`` (= 2 for one accelerator).
The paper prints the right-hand constant as ``c1 = R_s``; the substitution
above gives ``c1 = Σ_i R_i``, which coincides only under the (paper's
prototype) assumption of equal reconfiguration times when the sum is meant.
``c1_mode`` selects the general correct form (default) or the paper's
literal one.

The objective minimises ``Σ_s η_s`` (Algorithm 1).  Infeasibility has a
clean interpretation: the per-sample load ``c0 · Σ μ_i`` must stay below 1
(the shared chain is a single server); as it approaches 1, block sizes blow
up like ``1/(1 − load)``, and beyond it no block size helps.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..ilp import Model, Status, solve, sum_expr
from .params import GatewaySystem, ParameterError

__all__ = ["BlockSizeResult", "compute_block_sizes", "build_block_size_model", "sharing_load"]


@dataclass(frozen=True)
class BlockSizeResult:
    """Solution of Algorithm 1."""

    block_sizes: dict[str, int]
    objective: int
    feasible: bool
    backend: str
    load: Fraction

    @property
    def total(self) -> int:
        return sum(self.block_sizes.values())


def sharing_load(system: GatewaySystem) -> Fraction:
    """Aggregate per-sample load ``c0 · Σ_s μ_s`` on the shared chain.

    Block-size computation is feasible iff this is strictly below 1.
    """
    return system.c0 * sum((s.throughput for s in system.streams), Fraction(0))


def build_block_size_model(
    system: GatewaySystem,
    c1_mode: str = "sum",
    eta_max: int | None = None,
) -> Model:
    """Construct the Algorithm-1 ILP over variables ``eta:<stream>``."""
    if c1_mode not in ("sum", "paper"):
        raise ParameterError(f"c1_mode must be 'sum' or 'paper', got {c1_mode!r}")
    c0 = system.c0
    flush = system.flush_stages
    m = Model("algorithm1")
    etas = {
        s.name: m.int_var(f"eta:{s.name}", lo=1, hi=eta_max) for s in system.streams
    }
    r_sum = sum(s.reconfigure for s in system.streams)
    for s in system.streams:
        c1 = r_sum if c1_mode == "sum" else s.reconfigure
        mu = s.throughput
        lhs = etas[s.name] - c0 * mu * sum_expr(etas[i.name] + flush for i in system.streams)
        m.add(lhs >= mu * c1, name=f"tp:{s.name}")
    m.minimize(sum_expr(etas.values()))
    return m


def compute_block_sizes(
    system: GatewaySystem,
    backend: str = "scipy",
    c1_mode: str = "sum",
    eta_max: int | None = None,
) -> BlockSizeResult:
    """Solve Algorithm 1 and return minimum block sizes.

    Raises :class:`ParameterError` with the load diagnosis when infeasible.
    """
    load = sharing_load(system)
    model = build_block_size_model(system, c1_mode=c1_mode, eta_max=eta_max)
    sol = solve(model, backend=backend)
    if sol.status != Status.OPTIMAL:
        if load >= 1:
            raise ParameterError(
                f"infeasible: aggregate load c0·Σμ = {float(load):.4f} ≥ 1 — the "
                "shared chain cannot serve the requested rates at any block size"
            )
        raise ParameterError(f"block-size ILP not solved to optimality: {sol.status}")
    sizes = {
        s.name: int(round(sol[f"eta:{s.name}"])) for s in system.streams
    }
    return BlockSizeResult(
        block_sizes=sizes,
        objective=int(round(sol.objective or 0)),
        feasible=True,
        backend=sol.backend,
        load=load,
    )
