"""Construction of the per-stream CSDF model (paper Fig. 5).

For each stream ``s`` multiplexed over a gateway-managed accelerator chain, a
separate CSDF model is built (the interference of all *other* streams is
folded into the first-phase firing duration of the entry-gateway actor, Eq. 1
— that is what makes one-model-per-stream sound despite sharing).

Actors (for a chain of ``A`` accelerators):

=========  =============================================================
``vP``     producer task filling the entry buffer (α0)
``vG0``    entry-gateway: ``η_s`` phases; phase 0 waits for the whole
           block *and* for ``η_s`` spaces in the consumer buffer *and*
           for the pipeline-idle token, then pays ``ε̂_s + R_s + ε``;
           later phases pay ``ε`` each (one sample copied per phase)
``vA0..``  the accelerators, one token in / one token out per firing
``vG1``    exit-gateway: ``η_s`` phases of ``δ``; emits the
           pipeline-idle token to ``vG0`` in its last phase
``vC``     consumer task draining the exit buffer (α3)
=========  =============================================================

Edges: ``α1 = α2 = ni_capacity`` bound the NI FIFOs around the accelerators;
``α0`` bounds the producer buffer; ``α3`` is the consumer buffer whose *space*
is checked by the entry-gateway (back edge ``space`` from ``vC`` straight to
``vG0`` — the paper's check-for-space contribution, Section V-G).  The
``idle`` edge from ``vG1`` to ``vG0`` with one initial token enforces that a
new block only enters an empty pipeline.
"""

from __future__ import annotations

from fractions import Fraction

from ..dataflow import CSDFGraph
from ..dataflow.simulation import execute
from .params import GatewaySystem, ParameterError

__all__ = ["build_stream_csdf", "measure_block_time", "StreamModelInfo"]


class StreamModelInfo:
    """Names and parameters of a generated per-stream CSDF model."""

    def __init__(self, stream: str, eta: int, accelerators: list[str]):
        self.stream = stream
        self.eta = eta
        self.producer = "vP"
        self.entry = "vG0"
        self.accelerators = accelerators
        self.exit = "vG1"
        self.consumer = "vC"


def build_stream_csdf(
    system: GatewaySystem,
    stream_name: str,
    producer_period: float | Fraction | None = None,
    consumer_period: float | Fraction | None = None,
    alpha0: int | None = None,
    alpha3: int | None = None,
    epsilon_s: int | None = None,
    prequeued: int | None = None,
) -> tuple[CSDFGraph, StreamModelInfo]:
    """Build the Fig. 5 CSDF model for one stream.

    Parameters
    ----------
    producer_period / consumer_period:
        Firing durations of ``vP`` / ``vC`` in cycles per sample.  Default:
        ``1/μ_s`` (a producer/consumer exactly at the required rate).
    alpha0 / alpha3:
        Capacities of the producer/consumer buffers; default ``2·η_s``
        (enough to decouple the gateway round from the end tasks).
    epsilon_s:
        Worst-case interference ``ε̂_s`` from other streams folded into the
        first phase of ``vG0``.  Default: Eq. 3 over the system's streams
        (0 when the stream is alone).
    prequeued:
        Tokens initially in the producer buffer (Fig. 6 assumes a full block
        is already queued; default ``0`` — produced at rate ``1/μ_s``).
    """
    from .timing import epsilon_hat  # local import to avoid a cycle

    s = system.stream(stream_name)
    if s.block_size is None:
        raise ParameterError(f"stream {stream_name!r} needs a block size for the CSDF model")
    eta = s.block_size
    period = Fraction(1) / s.throughput
    if producer_period is None:
        producer_period = period
    if consumer_period is None:
        consumer_period = period
    if alpha0 is None:
        alpha0 = 2 * eta
    if alpha3 is None:
        alpha3 = 2 * eta
    if epsilon_s is None:
        epsilon_s = epsilon_hat(system, stream_name) if len(system.streams) > 1 else 0
    prequeued = int(prequeued or 0)
    if alpha0 < eta or alpha3 < eta:
        raise ParameterError("α0 and α3 must hold at least one block (η_s tokens)")
    if prequeued > alpha0:
        raise ParameterError("cannot prequeue more tokens than α0 holds")

    g = CSDFGraph(f"csdf[{stream_name}]")
    info = StreamModelInfo(stream_name, eta, [f"vA{i}" for i in range(len(system.accelerators))])

    g.add_actor(info.producer, duration=producer_period)
    first = epsilon_s + s.reconfigure + system.entry_copy
    g.add_actor(info.entry, duration=[first] + [system.entry_copy] * (eta - 1), phases=eta)
    for name, acc in zip(info.accelerators, system.accelerators):
        g.add_actor(name, duration=acc.rho)
    g.add_actor(info.exit, duration=[system.exit_copy] * eta, phases=eta)
    g.add_actor(info.consumer, duration=consumer_period)

    block_head = [eta] + [0] * (eta - 1)  # consume/produce a whole block in phase 0
    block_tail = [0] * (eta - 1) + [eta]  # ... or in the last phase
    per_phase = [1] * eta

    # α0: producer buffer; vG0 claims the whole block at once, releases the
    # space only after the block has fully left the gateway (last phase).
    g.add_edge(info.producer, info.entry, production=1, consumption=block_head,
               tokens=prequeued, name="p2g")
    g.add_edge(info.entry, info.producer, production=block_tail, consumption=1,
               tokens=alpha0 - prequeued, name="cap:p2g")

    # entry-gateway -> accelerator chain -> exit-gateway, all over bounded NIs
    stages = [info.entry, *info.accelerators, info.exit]
    for i, (src, dst) in enumerate(zip(stages, stages[1:])):
        prod = per_phase if src in (info.entry,) else 1
        cons = per_phase if dst in (info.exit,) else 1
        fwd = f"ni{i}"
        g.add_edge(src, dst, production=prod, consumption=cons, tokens=0, name=fwd)
        g.add_edge(dst, src, production=cons, consumption=prod,
                   tokens=system.ni_capacity, name=f"cap:{fwd}")

    # α3: exit buffer. Forward tokens flow vG1 -> vC; the *space* is checked
    # by the ENTRY gateway (phase 0 needs η_s free places, Section V-G).
    g.add_edge(info.exit, info.consumer, production=per_phase, consumption=1,
               tokens=0, name="g2c")
    g.add_edge(info.consumer, info.entry, production=1, consumption=block_head,
               tokens=alpha3, name="space")

    # pipeline-idle notification: produced by vG1's last phase, consumed by
    # vG0's first phase; one token = the pipeline starts idle.
    g.add_edge(info.exit, info.entry, production=block_tail[:-1] + [1],
               consumption=[1] + [0] * (eta - 1), tokens=1, name="idle")

    return g, info


def measure_block_time(
    graph: CSDFGraph, info: StreamModelInfo, blocks: int = 1
) -> list[float]:
    """Observed per-block processing times ``τ_s`` in a self-timed run.

    A block spans from the start of ``vG0``'s phase 0 to the end of
    ``vG1``'s last phase (exactly the τ_s of Fig. 6).  Returns one value per
    completed block.
    """
    res = execute(graph, iterations=blocks, record=True)
    g0 = [f for f in res.firings_of(info.entry) if f.phase == 0]
    g1 = [f for f in res.firings_of(info.exit) if f.phase == info.eta - 1]
    return [end.end - start.start for start, end in zip(g0, g1)]
