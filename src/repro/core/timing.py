"""The paper's closed-form temporal bounds (Equations 1–5).

All times are in clock cycles, all rates in samples per cycle.

* Eq. 1 — first-phase firing duration of the entry-gateway actor:
  ``ρ_G0[0] = ε̂_s + R_s + ε``.
* Eq. 2 — block processing time bound:
  ``τ̂_s = R_s + (η_s + F)·max(ε, ρ_A, δ)`` with flush term ``F`` (= 2 for a
  single shared accelerator, ``A + 1`` for a chain of ``A``).
* Eq. 3 — worst-case waiting for other streams under round-robin:
  ``ε̂_s = Σ_{i ∈ S\\s} τ̂_i``.
* Eq. 4 — worst-case turnaround of a queued block:
  ``γ_s = Σ_{i ∈ S} τ̂_i``.
* Eq. 5 — minimum-throughput requirement: ``η_s / γ_s ≥ μ_s``.
"""

from __future__ import annotations

from fractions import Fraction

from .params import GatewaySystem, ParameterError, StreamSpec

__all__ = [
    "tau_hat",
    "epsilon_hat",
    "gamma",
    "rho_g0_first_phase",
    "throughput_satisfied",
    "guaranteed_throughput",
    "block_round_length",
    "sample_latency_bound",
]


def _eta(stream: StreamSpec) -> int:
    if stream.block_size is None:
        raise ParameterError(f"stream {stream.name!r} has no block size assigned")
    return stream.block_size


def tau_hat(system: GatewaySystem, stream_name: str) -> int:
    """Eq. 2 — upper bound on processing one block of stream ``s``.

    ``τ̂_s = R_s + (η_s + F) · c0`` where ``c0 = max(ε, ρ_A, δ)`` and ``F``
    is the pipeline-flush term (:attr:`GatewaySystem.flush_stages`).
    """
    s = system.stream(stream_name)
    return s.reconfigure + (_eta(s) + system.flush_stages) * system.c0


def epsilon_hat(system: GatewaySystem, stream_name: str) -> int:
    """Eq. 3 — worst-case time stream ``s`` waits for all other streams."""
    system.stream(stream_name)  # validate the name
    return sum(tau_hat(system, i.name) for i in system.streams if i.name != stream_name)


def gamma(system: GatewaySystem, stream_name: str) -> int:
    """Eq. 4 — worst-case turnaround of a queued block of stream ``s``."""
    return epsilon_hat(system, stream_name) + tau_hat(system, stream_name)


def rho_g0_first_phase(system: GatewaySystem, stream_name: str) -> int:
    """Eq. 1 — worst-case duration of the entry-gateway's first phase."""
    s = system.stream(stream_name)
    return epsilon_hat(system, stream_name) + s.reconfigure + system.entry_copy


def block_round_length(system: GatewaySystem) -> int:
    """One full round-robin rotation: ``Σ_{i∈S} τ̂_i`` (equals every γ_s)."""
    return sum(tau_hat(system, s.name) for s in system.streams)


def guaranteed_throughput(system: GatewaySystem, stream_name: str) -> Fraction:
    """Worst-case guaranteed throughput ``η_s / γ_s`` in samples/cycle."""
    s = system.stream(stream_name)
    return Fraction(_eta(s), gamma(system, stream_name))


def sample_latency_bound(system: GatewaySystem, stream_name: str) -> Fraction:
    """Worst-case input-to-output latency of a single sample.

    A sample arriving at an empty input buffer waits at most one block-fill
    time (``η_s/μ_s`` — the block is completed by subsequent samples at the
    guaranteed input rate) plus the worst-case turnaround of its block
    (``γ_s``, Eq. 4): ``L̂_s = η_s/μ_s + γ_s``.
    """
    s = system.stream(stream_name)
    return Fraction(_eta(s)) / s.throughput + gamma(system, stream_name)


def throughput_satisfied(system: GatewaySystem, stream_name: str | None = None) -> bool:
    """Eq. 5 — does the block-size assignment meet the requirement(s)?

    Checks one stream, or all streams when ``stream_name`` is None.
    """
    names = [stream_name] if stream_name is not None else [s.name for s in system.streams]
    return all(
        guaranteed_throughput(system, n) >= system.stream(n).throughput for n in names
    )
