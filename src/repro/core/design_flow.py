"""The complete design flow of the paper, as one call.

Section V prescribes the methodology: check feasibility, compute minimum
block sizes with the ILP (Algorithm 1), then "after finding the smallest
block sizes, a standard algorithm for the computation of the minimum
buffer capacities can be used", and finally verify the throughput
constraints on the dataflow models.  :func:`run_design_flow` executes all
of it and returns a single report; optionally it also runs the
buffer-optimal branch-and-bound around the ILP point (Section V-F's
closing remark) and reports whether it found a cheaper memory solution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

from ..dataflow import GraphError
from .blocksize_bnb import optimal_block_sizes_for_buffers, stream_buffer_cost
from .blocksize_ilp import compute_block_sizes, sharing_load
from .params import GatewaySystem, ParameterError
from .timing import gamma, sample_latency_bound, tau_hat
from .utilization import UtilizationReport, analyze_utilization
from .verification import VerificationReport, verify_system

__all__ = ["DesignReport", "run_design_flow"]


@dataclass
class DesignReport:
    """Everything the paper's flow produces for one gateway system."""

    system: GatewaySystem                 # with block sizes assigned
    load: Fraction
    block_sizes: dict[str, int]
    buffer_capacities: dict[str, dict[str, int]]  # stream -> {edge: cap}
    verification: VerificationReport
    utilization: UtilizationReport
    bounds: dict[str, dict[str, int | float]]     # stream -> τ̂ / γ̂ / L̂
    buffer_optimal: dict[str, int] | None = None  # B&B block sizes, if run
    buffer_optimal_total: int | None = None
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.verification.ok

    @property
    def total_buffer(self) -> int:
        return sum(sum(c.values()) for c in self.buffer_capacities.values())

    def summary(self) -> str:
        lines = [f"design flow report — load {float(self.load):.3f}"]
        for name, eta in self.block_sizes.items():
            b = self.bounds[name]
            caps = self.buffer_capacities.get(name, {})
            lines.append(
                f"  {name:<10} η={eta:<7} τ̂={b['tau']:<8} γ̂={b['gamma']:<8} "
                f"L̂={b['latency']:<10.0f} buffers={sum(caps.values())}"
            )
        lines.append(f"  total buffer capacity: {self.total_buffer} tokens")
        if self.buffer_optimal is not None:
            lines.append(
                f"  buffer-optimal B&B: η={self.buffer_optimal} "
                f"(total {self.buffer_optimal_total} tokens)"
            )
        for n in self.notes:
            lines.append(f"  note: {n}")
        lines.append(self.verification.summary())
        return "\n".join(lines)


def run_design_flow(
    system: GatewaySystem,
    backend: str = "scipy",
    size_buffers: bool = True,
    buffer_bnb_radius: int = 0,
    cap_limit: int = 512,
) -> DesignReport:
    """Execute the paper's complete design methodology.

    Parameters
    ----------
    backend:
        ILP backend for Algorithm 1 (``"scipy"`` or ``"bnb"``).
    size_buffers:
        Run the per-stream minimum-buffer computation on the Fig. 7 models
        (skippable: it is the slow step for large η).
    buffer_bnb_radius:
        When > 0, additionally search block sizes within ``±radius`` of the
        ILP point for a smaller total buffer (Section V-F's branch-and-
        bound).  0 disables it.
    """
    load = sharing_load(system)
    if load >= 1:
        raise ParameterError(
            f"infeasible: aggregate load c0·Σμ = {float(load):.4f} ≥ 1"
        )
    notes: list[str] = []
    ilp = compute_block_sizes(system, backend=backend)
    assigned = system.with_block_sizes(ilp.block_sizes)

    bounds = {
        s.name: {
            "tau": tau_hat(assigned, s.name),
            "gamma": gamma(assigned, s.name),
            "latency": float(sample_latency_bound(assigned, s.name)),
        }
        for s in assigned.streams
    }

    buffers: dict[str, dict[str, int]] = {}
    if size_buffers:
        for s in assigned.streams:
            try:
                buffers[s.name] = stream_buffer_cost(
                    assigned, s.name, cap_limit=max(cap_limit, 3 * (s.block_size or 1))
                )
            except GraphError as err:
                notes.append(f"buffer sizing skipped for {s.name}: {err}")

    buffer_optimal = None
    buffer_optimal_total = None
    if buffer_bnb_radius > 0:
        ranges = {
            name: range(max(1, eta), eta + buffer_bnb_radius + 1)
            for name, eta in ilp.block_sizes.items()
        }
        try:
            res = optimal_block_sizes_for_buffers(assigned, ranges, cap_limit=cap_limit)
            buffer_optimal = res.block_sizes
            buffer_optimal_total = res.total_buffer
        except ParameterError as err:
            notes.append(f"buffer-optimal search found nothing: {err}")

    verification = verify_system(assigned)
    utilization = analyze_utilization(assigned)
    return DesignReport(
        system=assigned,
        load=load,
        block_sizes=ilp.block_sizes,
        buffer_capacities=buffers,
        verification=verification,
        utilization=utilization,
        bounds=bounds,
        buffer_optimal=buffer_optimal,
        buffer_optimal_total=buffer_optimal_total,
        notes=notes,
    )
