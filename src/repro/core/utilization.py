"""Utilization accounting for a gateway system (paper Section VI-A).

The paper reports, for the PAL demonstrator, how the entry-gateway's time
divides between moving data and saving/restoring accelerator state, and that
sharing improved accelerator utilization by a factor of four.  This module
computes those figures from the closed-form bounds; the architecture
simulator produces the measured counterparts (cross-checked in the
integration tests).

Two decompositions of one round-robin rotation ``Γ = Σ_i τ̂_i`` are exposed:

* **gateway-centric** — per stream, ``η_s·ε`` cycles of per-sample gateway
  processing vs. ``R_s`` cycles of reconfiguration (state save/restore);
* **transfer-centric** — the entry-gateway's 15 cycles/sample are dominated
  by context/bookkeeping; only the DMA's actual data movement (1 cycle per
  sample, like the accelerators) is "processing data".  Under this reading
  the prototype spends ≈5% of its time moving data — the figure the paper
  quotes — and ≈95% on state management.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from .params import GatewaySystem
from .timing import block_round_length, tau_hat

__all__ = ["UtilizationReport", "analyze_utilization", "accelerator_utilization_gain"]


@dataclass(frozen=True)
class UtilizationReport:
    """Breakdown of one worst-case round-robin rotation."""

    round_length: int
    samples_per_round: int
    copy_cycles: int          # η·ε summed over streams (gateway per-sample work)
    reconfig_cycles: int      # Σ R_s (explicit state save/restore)
    dma_transfer_cycles: int  # 1 cycle/sample actual data movement
    flush_cycles: int         # pipeline flush term Σ F·c0

    @property
    def gateway_copy_fraction(self) -> Fraction:
        """Fraction of the round the gateway spends in per-sample copying."""
        return Fraction(self.copy_cycles, self.round_length)

    @property
    def reconfig_fraction(self) -> Fraction:
        """Fraction spent in explicit reconfiguration (R_s)."""
        return Fraction(self.reconfig_cycles, self.round_length)

    @property
    def data_processing_fraction(self) -> Fraction:
        """Transfer-centric 'processing data' fraction (paper's ≈5%)."""
        return Fraction(self.dma_transfer_cycles, self.round_length)

    @property
    def state_management_fraction(self) -> Fraction:
        """Transfer-centric state-management fraction (paper's ≈95%)."""
        return 1 - self.data_processing_fraction


def analyze_utilization(system: GatewaySystem) -> UtilizationReport:
    """Compute the utilization decomposition from the closed-form bounds."""
    system.require_block_sizes()
    total = block_round_length(system)
    samples = sum(s.block_size or 0 for s in system.streams)
    copy = sum((s.block_size or 0) * system.entry_copy for s in system.streams)
    reconf = sum(s.reconfigure for s in system.streams)
    flush = sum(
        tau_hat(system, s.name)
        - s.reconfigure
        - (s.block_size or 0) * system.c0
        for s in system.streams
    )
    return UtilizationReport(
        round_length=total,
        samples_per_round=samples,
        copy_cycles=copy,
        reconfig_cycles=reconf,
        dma_transfer_cycles=samples,  # 1 cycle/sample of real movement
        flush_cycles=flush,
    )


def accelerator_utilization_gain(n_streams: int, n_shared: int = 1) -> Fraction:
    """Utilization improvement from sharing.

    Without sharing, each of ``n_streams`` streams owns a private accelerator
    used ``1/n_streams`` of the aggregate demand; with ``n_shared`` shared
    instances serving all streams, each instance carries
    ``n_streams / n_shared`` times the work.  For the PAL demonstrator
    (4 streams onto 1 of each accelerator) the gain is the paper's factor 4.
    """
    if n_streams < 1 or n_shared < 1:
        raise ValueError("stream and accelerator counts must be positive")
    return Fraction(n_streams, n_shared)
