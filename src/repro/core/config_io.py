"""JSON (de)serialisation of gateway-system descriptions.

Lets designs live in version-controlled config files and feed the CLI::

    {
      "entry_copy": 15,
      "exit_copy": 1,
      "accelerators": [{"name": "cordic", "rho": 1}],
      "streams": [
        {"name": "radio_a", "samples_per_second": 2000000,
         "clock_hz": 100000000, "reconfigure": 4100},
        {"name": "radio_b", "throughput": [1, 200], "reconfigure": 4100}
      ]
    }

Throughput is given either as ``samples_per_second`` + ``clock_hz`` or as
an exact ``[numerator, denominator]`` samples-per-cycle fraction.
"""

from __future__ import annotations

import json
from fractions import Fraction
from typing import Any

from .params import AcceleratorSpec, GatewaySystem, ParameterError, StreamSpec

__all__ = [
    "system_to_dict",
    "system_from_dict",
    "dump_system",
    "load_system",
    "REPORT_SCHEMA",
    "REPORT_SCHEMA_VERSION",
    "REPORT_KINDS",
    "ReportError",
    "make_report",
    "dump_report",
    "load_report",
    "JOURNAL_SCHEMA",
    "JOURNAL_SCHEMA_VERSION",
    "JOURNAL_KINDS",
    "JournalError",
    "make_journal_entry",
    "dump_journal_entry",
    "parse_journal_entry",
]


def system_to_dict(system: GatewaySystem) -> dict[str, Any]:
    """Plain-dict representation of a gateway system."""
    return {
        "entry_copy": system.entry_copy,
        "exit_copy": system.exit_copy,
        "ni_capacity": system.ni_capacity,
        "accelerators": [
            {"name": a.name, "rho": a.rho} for a in system.accelerators
        ],
        "streams": [
            {
                "name": s.name,
                "throughput": [s.throughput.numerator, s.throughput.denominator],
                "reconfigure": s.reconfigure,
                **({"block_size": s.block_size} if s.block_size is not None else {}),
            }
            for s in system.streams
        ],
    }


def _stream_from(entry: dict[str, Any]) -> StreamSpec:
    try:
        name = entry["name"]
        reconfigure = entry["reconfigure"]
    except KeyError as err:
        raise ParameterError(f"stream entry missing key {err}") from err
    if "throughput" in entry:
        num, den = entry["throughput"]
        mu = Fraction(num, den)
        return StreamSpec(name, mu, reconfigure, entry.get("block_size"))
    if "samples_per_second" in entry:
        try:
            clock = entry["clock_hz"]
        except KeyError as err:
            raise ParameterError(
                f"stream {name!r}: samples_per_second needs clock_hz"
            ) from err
        return StreamSpec.from_rate(
            name, entry["samples_per_second"], clock, reconfigure,
            entry.get("block_size"),
        )
    raise ParameterError(
        f"stream {name!r}: give 'throughput' [num, den] or "
        "'samples_per_second' + 'clock_hz'"
    )


#: every key a system JSON object may carry at the top level
_SYSTEM_KEYS = frozenset(
    {"entry_copy", "exit_copy", "ni_capacity", "accelerators", "streams"}
)


def system_from_dict(data: dict[str, Any]) -> GatewaySystem:
    """Rebuild a gateway system from :func:`system_to_dict` output.

    Unknown top-level keys are rejected eagerly with a did-you-mean hint —
    a misspelled ``entry_copy`` must fail loudly, not silently fall back to
    its default and skew every bound downstream.
    """
    if not isinstance(data, dict):
        raise ParameterError(
            f"system config must be a JSON object, got {type(data).__name__}"
        )
    unknown = set(data) - _SYSTEM_KEYS
    if unknown:
        from difflib import get_close_matches

        hints = []
        for key in sorted(unknown):
            close = get_close_matches(str(key), sorted(_SYSTEM_KEYS), n=1)
            if close:
                hints.append(f"did you mean {close[0]!r} instead of {key!r}?")
        hint = (" " + " ".join(hints)) if hints else ""
        raise ParameterError(
            f"unknown top-level key(s) {sorted(unknown)} in system config "
            f"(expected a subset of {sorted(_SYSTEM_KEYS)}).{hint}"
        )
    try:
        accs = data["accelerators"]
        streams = data["streams"]
    except KeyError as err:
        raise ParameterError(f"system dict missing key {err}") from err
    return GatewaySystem(
        accelerators=tuple(AcceleratorSpec(a["name"], a["rho"]) for a in accs),
        streams=tuple(_stream_from(s) for s in streams),
        entry_copy=data.get("entry_copy", 15),
        exit_copy=data.get("exit_copy", 1),
        ni_capacity=data.get("ni_capacity", 2),
    )


def dump_system(system: GatewaySystem, indent: int | None = 2) -> str:
    """Serialise a system to JSON."""
    return json.dumps(system_to_dict(system), indent=indent)


def load_system(text: str) -> GatewaySystem:
    """Parse a system from JSON."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as err:
        raise ParameterError(f"invalid system JSON: {err}") from err
    return system_from_dict(data)


# ---------------------------------------------------------------------------
# Report schema — one JSON envelope for every machine-readable result
# ---------------------------------------------------------------------------
#
# Before this schema existed the repo emitted three overlapping ad-hoc
# dicts: StreamMetrics dumps (``metrics --json``), conformance reports
# (``conformance --json``) and reconfiguration transition tables
# (``reconfig --json``), each with its own shape and no version marker.
# Every machine-readable artifact — CLI ``--json`` output, ``BENCH_*.json``
# sweep payloads, :meth:`repro.api.RunResult.report` — now shares one
# envelope::
#
#     {"schema": "repro.report", "version": 1, "kind": "<kind>", ...body...}
#
# Body keys live at the top level next to the envelope fields, so pre-schema
# consumers that indexed e.g. ``blob["streams"]`` keep working unchanged.

REPORT_SCHEMA = "repro.report"
REPORT_SCHEMA_VERSION = 1

#: every report kind the toolkit emits; ``load_report`` rejects others
#: ("bench" is a standalone benchmark comparison, e.g. BENCH_kernel_wheel)
REPORT_KINDS = frozenset(
    {"metrics", "conformance", "faults", "reconfig", "run", "sweep", "bench"}
)

_ENVELOPE_KEYS = ("schema", "version", "kind")


class ReportError(ParameterError):
    """Raised for malformed or unsupported report envelopes."""


def make_report(kind: str, body: dict[str, Any]) -> dict[str, Any]:
    """Wrap ``body`` in the versioned report envelope.

    ``body`` keys must not collide with the envelope fields; the result is a
    plain JSON-serialisable dict with the envelope fields first.
    """
    if kind not in REPORT_KINDS:
        raise ReportError(
            f"unknown report kind {kind!r}; expected one of {sorted(REPORT_KINDS)}"
        )
    clash = [k for k in _ENVELOPE_KEYS if k in body]
    if clash:
        raise ReportError(f"report body shadows envelope key(s): {clash}")
    return {
        "schema": REPORT_SCHEMA,
        "version": REPORT_SCHEMA_VERSION,
        "kind": kind,
        **body,
    }


def dump_report(report: dict[str, Any], indent: int | None = 2) -> str:
    """Serialise a report envelope to JSON (validates the envelope first)."""
    _check_envelope(report)
    return json.dumps(report, indent=indent)


def load_report(text: str) -> dict[str, Any]:
    """Parse and validate a report envelope produced by :func:`dump_report`."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as err:
        raise ReportError(f"invalid report JSON: {err}") from err
    if not isinstance(data, dict):
        raise ReportError(f"report must be a JSON object, got {type(data).__name__}")
    _check_envelope(data)
    return data


def _check_envelope(report: dict[str, Any]) -> None:
    missing = [k for k in _ENVELOPE_KEYS if k not in report]
    if missing:
        raise ReportError(f"report missing envelope key(s): {missing}")
    if report["schema"] != REPORT_SCHEMA:
        raise ReportError(
            f"unknown report schema {report['schema']!r} (expected {REPORT_SCHEMA!r})"
        )
    if report["version"] != REPORT_SCHEMA_VERSION:
        raise ReportError(
            f"unsupported report version {report['version']!r} "
            f"(this build reads version {REPORT_SCHEMA_VERSION})"
        )
    if report["kind"] not in REPORT_KINDS:
        raise ReportError(f"unknown report kind {report['kind']!r}")


# ---------------------------------------------------------------------------
# Journal schema — one-line envelopes for the durable sweep result store
# ---------------------------------------------------------------------------
#
# The sweep engine's :class:`repro.exp.store.ResultStore` journals every
# completed chunk as it lands so an interrupted run can resume.  Journals are
# append-only JSONL: one envelope per line, written atomically enough that a
# crash can at worst truncate the *final* line (readers tolerate a ragged
# tail).  The envelope mirrors the report schema — versioned, kind-tagged —
# but each entry is a single line, never pretty-printed.

JOURNAL_SCHEMA = "repro.journal"
JOURNAL_SCHEMA_VERSION = 1

#: ``meta`` pins the sweep identity a journal belongs to; ``point`` is one
#: durable point outcome; ``chunk`` marks a chunk fully journaled (the
#: store's unit of resume — points without their chunk marker are re-run)
JOURNAL_KINDS = frozenset({"meta", "point", "chunk"})


class JournalError(ParameterError):
    """Raised for malformed or mismatched journal entries."""


def make_journal_entry(kind: str, body: dict[str, Any]) -> dict[str, Any]:
    """Wrap ``body`` in the versioned one-line journal envelope."""
    if kind not in JOURNAL_KINDS:
        raise JournalError(
            f"unknown journal kind {kind!r}; expected one of {sorted(JOURNAL_KINDS)}"
        )
    clash = [k for k in _ENVELOPE_KEYS if k in body]
    if clash:
        raise JournalError(f"journal body shadows envelope key(s): {clash}")
    return {
        "schema": JOURNAL_SCHEMA,
        "version": JOURNAL_SCHEMA_VERSION,
        "kind": kind,
        **body,
    }


def dump_journal_entry(entry: dict[str, Any]) -> str:
    """Serialise a journal entry to exactly one JSON line (no newline)."""
    _check_journal_envelope(entry)
    return json.dumps(entry, sort_keys=True, separators=(",", ":"))


def parse_journal_entry(line: str) -> dict[str, Any]:
    """Parse and validate one journal line produced by :func:`dump_journal_entry`."""
    try:
        data = json.loads(line)
    except json.JSONDecodeError as err:
        raise JournalError(f"invalid journal line: {err}") from err
    if not isinstance(data, dict):
        raise JournalError(
            f"journal entry must be a JSON object, got {type(data).__name__}"
        )
    _check_journal_envelope(data)
    return data


def _check_journal_envelope(entry: dict[str, Any]) -> None:
    missing = [k for k in _ENVELOPE_KEYS if k not in entry]
    if missing:
        raise JournalError(f"journal entry missing envelope key(s): {missing}")
    if entry["schema"] != JOURNAL_SCHEMA:
        raise JournalError(
            f"unknown journal schema {entry['schema']!r} "
            f"(expected {JOURNAL_SCHEMA!r})"
        )
    if entry["version"] != JOURNAL_SCHEMA_VERSION:
        raise JournalError(
            f"unsupported journal version {entry['version']!r} "
            f"(this build reads version {JOURNAL_SCHEMA_VERSION})"
        )
    if entry["kind"] not in JOURNAL_KINDS:
        raise JournalError(f"unknown journal kind {entry['kind']!r}")
