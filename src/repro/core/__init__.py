"""The paper's primary contribution: temporal analysis of shared accelerators.

Workflow (mirrors Sections III–V of the paper):

1. describe the shared chain as a :class:`GatewaySystem` with
   :class:`StreamSpec`/:class:`AcceleratorSpec`,
2. compute minimum block sizes with :func:`compute_block_sizes`
   (Algorithm 1), or buffer-optimal ones with
   :func:`optimal_block_sizes_for_buffers`,
3. verify the assignment end-to-end with :func:`verify_system`
   (Eq. 5 + CSDF/SDF models + refinement),
4. size the buffers (:func:`stream_buffer_cost`) and inspect utilization
   (:func:`analyze_utilization`).
"""

from .blocksize_bnb import (
    BufferOptimalResult,
    optimal_block_sizes_for_buffers,
    stream_buffer_cost,
)
from .blocksize_ilp import (
    BlockSizeResult,
    build_block_size_model,
    closed_form_block_sizes,
    compute_block_sizes,
    resolve_block_sizes,
    sharing_load,
    system_fingerprint,
)
from .config_io import (
    JOURNAL_KINDS,
    JOURNAL_SCHEMA,
    JOURNAL_SCHEMA_VERSION,
    REPORT_KINDS,
    REPORT_SCHEMA,
    REPORT_SCHEMA_VERSION,
    JournalError,
    ReportError,
    dump_journal_entry,
    dump_report,
    dump_system,
    load_report,
    load_system,
    make_journal_entry,
    make_report,
    parse_journal_entry,
    system_from_dict,
    system_to_dict,
)
from .conformance import (
    AttributedReport,
    Attribution,
    ConformanceReport,
    ModalConformanceReport,
    ModeConformance,
    ModeWindow,
    StreamBounds,
    StreamConformance,
    Violation,
    attribute_conformance,
    attribute_modal_conformance,
    bounds_for,
    calibrated_system,
    check_conformance,
    check_modal_conformance,
    check_stream,
    slice_stream_window,
    violation_window,
)
from .design_flow import DesignReport, run_design_flow
from .csdf_builder import StreamModelInfo, build_stream_csdf, measure_block_time
from .parametric import Affine, ParametricSchedule, parametric_schedule
from .params import AcceleratorSpec, GatewaySystem, ParameterError, StreamSpec
from .sdf_abstraction import build_stream_sdf, verify_with_sdf_model
from .timing import (
    block_round_length,
    sample_latency_bound,
    epsilon_hat,
    gamma,
    guaranteed_throughput,
    rho_g0_first_phase,
    tau_hat,
    throughput_satisfied,
)
from .utilization import (
    UtilizationReport,
    accelerator_utilization_gain,
    analyze_utilization,
)
from .verification import StreamVerification, VerificationReport, verify_system

__all__ = [
    "AcceleratorSpec",
    "Affine",
    "AttributedReport",
    "Attribution",
    "BlockSizeResult",
    "BufferOptimalResult",
    "ConformanceReport",
    "DesignReport",
    "GatewaySystem",
    "ModalConformanceReport",
    "ModeConformance",
    "ModeWindow",
    "ParameterError",
    "ParametricSchedule",
    "StreamBounds",
    "StreamConformance",
    "StreamModelInfo",
    "StreamSpec",
    "StreamVerification",
    "UtilizationReport",
    "VerificationReport",
    "Violation",
    "accelerator_utilization_gain",
    "analyze_utilization",
    "attribute_conformance",
    "attribute_modal_conformance",
    "block_round_length",
    "bounds_for",
    "build_block_size_model",
    "build_stream_csdf",
    "build_stream_sdf",
    "calibrated_system",
    "check_conformance",
    "check_modal_conformance",
    "check_stream",
    "closed_form_block_sizes",
    "compute_block_sizes",
    "dump_system",
    "load_system",
    "system_from_dict",
    "system_to_dict",
    "REPORT_KINDS",
    "REPORT_SCHEMA",
    "REPORT_SCHEMA_VERSION",
    "ReportError",
    "dump_report",
    "load_report",
    "make_report",
    "JOURNAL_KINDS",
    "JOURNAL_SCHEMA",
    "JOURNAL_SCHEMA_VERSION",
    "JournalError",
    "dump_journal_entry",
    "make_journal_entry",
    "parse_journal_entry",
    "epsilon_hat",
    "gamma",
    "guaranteed_throughput",
    "measure_block_time",
    "optimal_block_sizes_for_buffers",
    "parametric_schedule",
    "resolve_block_sizes",
    "rho_g0_first_phase",
    "run_design_flow",
    "sample_latency_bound",
    "sharing_load",
    "slice_stream_window",
    "system_fingerprint",
    "stream_buffer_cost",
    "tau_hat",
    "throughput_satisfied",
    "verify_system",
    "verify_with_sdf_model",
    "violation_window",
]
