"""Single-actor SDF abstraction of the gateway + accelerator chain (Fig. 7).

The detailed CSDF model of :mod:`repro.core.csdf_builder` collapses into one
SDF actor ``vS`` with firing duration ``γ̂_s`` (Eq. 4): it consumes a whole
block of ``η_s`` tokens from the producer buffer (α0), occupies the shared
chain for at most ``γ̂_s``, and produces the ``η_s`` output tokens atomically
into the consumer buffer (α3).  The only pessimism versus the CSDF model is
the atomic production at the end of the firing — tokens that the exit
gateway actually delivers sample-by-sample arrive earlier in reality, so the
abstraction is conservative under the-earlier-the-better refinement
(Section V-C).

With this topology, "SDF techniques" (state-space throughput, buffer
minimisation) apply directly; :func:`verify_with_sdf_model` runs Eq. 5
through the dataflow machinery rather than the closed form, which the tests
cross-check against :func:`repro.core.timing.throughput_satisfied`.
"""

from __future__ import annotations

from fractions import Fraction

from ..dataflow import SDFGraph, steady_state_throughput
from .params import GatewaySystem, ParameterError
from .timing import gamma

__all__ = ["build_stream_sdf", "verify_with_sdf_model"]


def build_stream_sdf(
    system: GatewaySystem,
    stream_name: str,
    producer_period: float | Fraction | None = None,
    consumer_period: float | Fraction | None = None,
    alpha0: int | None = None,
    alpha3: int | None = None,
) -> SDFGraph:
    """Build the Fig. 7 single-actor SDF model for one stream.

    Actors: ``vP`` → (α0) → ``vS`` → (α3) → ``vC``; ``vS`` has duration
    ``γ̂_s`` and quanta ``η_s`` on both edges.  Buffers are modelled with
    capacity back-edges.  Defaults mirror :func:`build_stream_csdf`.
    """
    s = system.stream(stream_name)
    if s.block_size is None:
        raise ParameterError(f"stream {stream_name!r} needs a block size for the SDF model")
    eta = s.block_size
    period = Fraction(1) / s.throughput
    if producer_period is None:
        producer_period = period
    if consumer_period is None:
        consumer_period = period
    if alpha0 is None:
        alpha0 = 2 * eta
    if alpha3 is None:
        alpha3 = 2 * eta
    if alpha0 < eta or alpha3 < eta:
        raise ParameterError("α0 and α3 must hold at least one block (η_s tokens)")

    g = SDFGraph(f"sdf[{stream_name}]")
    g.add_actor("vP", duration=producer_period)
    g.add_actor("vS", duration=gamma(system, stream_name))
    g.add_actor("vC", duration=consumer_period)

    g.add_edge("vP", "vS", production=1, consumption=eta, tokens=0, name="p2s")
    g.add_edge("vS", "vP", production=eta, consumption=1, tokens=alpha0, name="cap:p2s")
    g.add_edge("vS", "vC", production=eta, consumption=1, tokens=0, name="s2c")
    g.add_edge("vC", "vS", production=1, consumption=eta, tokens=alpha3, name="cap:s2c")
    return g


def verify_with_sdf_model(
    system: GatewaySystem,
    stream_name: str,
    alpha0: int | None = None,
    alpha3: int | None = None,
) -> tuple[bool, Fraction]:
    """Eq. 5 via the dataflow machinery on the Fig. 7 model.

    The producer is modelled *at the required rate* ``μ_s``; the consumer
    likewise.  The check passes when the steady-state consumer rate equals
    ``μ_s`` (no backlog builds up, i.e. ``vC`` is never the bottleneck's
    victim).  Returns ``(satisfied, consumer_rate)``.
    """
    s = system.stream(stream_name)
    g = build_stream_sdf(system, stream_name, alpha0=alpha0, alpha3=alpha3)
    rate = steady_state_throughput(g, actor="vC").firing_rate
    return rate >= s.throughput, rate
