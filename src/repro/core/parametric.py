"""Symbolic schedules parameterized in the block size η (paper Section III).

"Instead of computing the MCM we construct a schedule that is parameterized
in the block size."  This module does that construction symbolically: start
and end times of every pipeline stage are affine forms ``a·η + b``, the
block time τ(η) falls out as an affine form, and Eq. 2's bound can be
*derived* (and checked) instead of postulated.

The affine arithmetic assumes the steady pipeline regime where one stage is
the bottleneck (coefficient comparison picks it), matching the paper's
``max(ε, ρ_A, δ)`` argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from .params import GatewaySystem, ParameterError

__all__ = ["Affine", "ParametricSchedule", "parametric_schedule"]


@dataclass(frozen=True)
class Affine:
    """An affine form ``slope·η + offset`` over the block-size parameter."""

    slope: Fraction
    offset: Fraction

    @staticmethod
    def const(value) -> "Affine":
        return Affine(Fraction(0), Fraction(value))

    @staticmethod
    def eta(scale=1) -> "Affine":
        return Affine(Fraction(scale), Fraction(0))

    def __add__(self, other: "Affine | int") -> "Affine":
        other = other if isinstance(other, Affine) else Affine.const(other)
        return Affine(self.slope + other.slope, self.offset + other.offset)

    def __sub__(self, other: "Affine | int") -> "Affine":
        other = other if isinstance(other, Affine) else Affine.const(other)
        return Affine(self.slope - other.slope, self.offset - other.offset)

    def __call__(self, eta: int) -> Fraction:
        return self.slope * eta + self.offset

    def dominates(self, other: "Affine", eta_min: int = 1) -> bool:
        """True when self(η) ≥ other(η) for all η ≥ eta_min."""
        diff = self - other
        return diff.slope >= 0 and diff(eta_min) >= 0

    def __str__(self) -> str:
        if self.slope == 0:
            return f"{self.offset}"
        if self.offset == 0:
            return f"{self.slope}·η"
        sign = "+" if self.offset >= 0 else "-"
        return f"{self.slope}·η {sign} {abs(self.offset)}"


@dataclass(frozen=True)
class ParametricSchedule:
    """Symbolic Fig. 6 schedule of one block for one stream.

    Attributes are affine forms in η: the entry-gateway finishes its k-th
    copy at ``g0_end``, each chain stage trails by its own per-sample cost,
    and the block completes at ``tau``.
    """

    stream: str
    g0_first_phase: Affine    # Eq. 1 duration of phase 0 (constant in η)
    g0_end: Affine            # entry gateway done copying the block
    stage_ends: tuple[Affine, ...]  # accelerator stages done
    tau: Affine               # exit gateway forwarded the last sample
    bottleneck: str           # which stage's per-sample cost dominates

    def tau_at(self, eta: int) -> Fraction:
        return self.tau(eta)

    def describe(self) -> str:
        lines = [f"parametric schedule of stream {self.stream!r}:"]
        lines.append(f"  ρ_G0[0] = {self.g0_first_phase}")
        lines.append(f"  entry gateway done  @ {self.g0_end}")
        for i, s in enumerate(self.stage_ends):
            lines.append(f"  accelerator {i} done @ {s}")
        lines.append(f"  τ(η) = {self.tau}   (bottleneck: {self.bottleneck})")
        return "\n".join(lines)


def parametric_schedule(system: GatewaySystem, stream_name: str) -> ParametricSchedule:
    """Construct the symbolic one-block schedule for a stream.

    Steady pipeline model: the k-th sample leaves stage ``j`` at

        start + R + max-prefix-cost·k + Σ_{i≤j} cost_i

    where ``cost_i`` is the per-sample time of stage ``i`` and the slope is
    the largest per-sample cost among stages up to ``j`` (the slowest stage
    paces everything behind it).  With ``k = η`` at the exit gateway this
    yields ``τ(η) = max(ε, ρ, δ)·η + R + Σ residual stage costs`` — which
    Eq. 2 upper-bounds by ``R + (η + flush)·c0``; the construction verifies
    the domination symbolically.
    """
    s = system.stream(stream_name)
    from .timing import epsilon_hat

    eps_s = epsilon_hat(system, stream_name) if len(system.streams) > 1 else 0

    costs = [("entry ε", system.entry_copy)]
    costs += [(f"acc {a.name}", a.rho) for a in system.accelerators]
    costs.append(("exit δ", system.exit_copy))

    g0_first = Affine.const(eps_s + s.reconfigure + system.entry_copy)
    # entry gateway finishes its η-th copy:
    g0_end = Affine.eta(system.entry_copy) + Affine.const(eps_s + s.reconfigure)

    # last sample leaves stage j: slope = max prefix cost, offset = R + ε̂ +
    # the residual per-stage costs of the non-bottleneck stages
    stage_ends: list[Affine] = []
    running: list[tuple[str, int]] = [costs[0]]
    for name, cost in costs[1:]:
        running.append((name, cost))
        slope = max(c for _n, c in running)
        # every stage except the pacing one contributes its cost once
        # (pipeline fill); the pacing stage is absorbed into the slope
        residual = sum(c for _n, c in running) - slope
        stage_ends.append(
            Affine.eta(slope) + Affine.const(eps_s + s.reconfigure + residual)
        )
    tau = stage_ends[-1] - Affine.const(eps_s)
    bottleneck = max(costs, key=lambda nc: nc[1])[0]

    sched = ParametricSchedule(
        stream=stream_name,
        g0_first_phase=g0_first,
        g0_end=g0_end,
        stage_ends=tuple(stage_ends[:-1]),
        tau=tau,
        bottleneck=bottleneck,
    )

    # derive/verify Eq. 2: the closed-form bound must dominate τ(η)
    c0 = system.c0
    eq2 = Affine.eta(c0) + Affine.const(s.reconfigure + system.flush_stages * c0)
    if not eq2.dominates(sched.tau):
        raise ParameterError(
            f"internal inconsistency: Eq. 2 bound {eq2} does not dominate "
            f"the constructed schedule {sched.tau}"
        )
    return sched
