"""Bound-conformance checking: observed behaviour vs. the Eq. 2–5 bounds.

The paper's central claim is that the gateway architecture is a *temporal
refinement* of its dataflow model: every observed block must stay within
the closed-form bounds of :mod:`repro.core.timing`.  This module makes the
claim executable and observable — it compares the per-stream metrics
measured by :mod:`repro.sim.metrics` against ``τ̂`` (Eq. 2), ``ε̂`` (Eq. 3),
``γ`` (Eq. 4) and the ``η/γ`` throughput guarantee behind Eq. 5, reporting
the margin on every quantity and flagging any violation.  A violation means
the refinement is broken — a bug in either the model or the architecture —
so reports render it loudly and the CLI exits non-zero.

The cycle-level architecture has measured per-sample costs above the bare
parameters (ring injection, NI handshakes, C-FIFO pointer updates);
:func:`calibrated_system` instantiates the analysis with those measured
costs, exactly as the paper instantiates its analysis with the prototype's
measured ``ε = 15``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from fractions import Fraction
from typing import Any, Iterable

from ..sim.metrics import StreamMetrics
from .params import GatewaySystem, ParameterError
from .timing import (
    epsilon_hat,
    gamma,
    guaranteed_throughput,
    sample_latency_bound,
    tau_hat,
)

__all__ = [
    "StreamBounds",
    "Violation",
    "StreamConformance",
    "ConformanceReport",
    "Attribution",
    "AttributedReport",
    "ModeWindow",
    "ModeConformance",
    "ModalConformanceReport",
    "bounds_for",
    "check_stream",
    "check_conformance",
    "check_modal_conformance",
    "calibrated_system",
    "attribute_conformance",
    "attribute_modal_conformance",
    "violation_window",
    "slice_stream_window",
]

#: Calibration offsets measured on the cycle-level architecture model.
#:
#: Entry copy: one DMA ring-inject cycle, plus one worst-case cycle of
#: data-ring link-grant contention per sample — the C-FIFO read-pointer
#: flit that the entry gateway posts back to the producer wraps around the
#: ring through the accelerator→exit links and can delay the next data
#: flit's grant by one cycle (observed at ``ε = 8``; at ``ε = 15`` the
#: pointer flit drains inside the copy interval and the contention
#: vanishes, matching the ``ε + 1`` cost that
#: tests/integration/test_bounds_vs_sim.py calibrates against).
#: Accelerator: NI receive + send handshakes.  Exit copy: C-FIFO data +
#: write-pointer posted writes + one contention cycle.
ENTRY_OVERHEAD_CYCLES = 2
NI_OVERHEAD_CYCLES = 2
CFIFO_OVERHEAD_CYCLES = 3

#: Backwards-compatible alias (the bare inject cost without the
#: worst-case contention cycle).
RING_INJECT_CYCLES = 1


def calibrated_system(
    system: GatewaySystem,
    entry_overhead: int = ENTRY_OVERHEAD_CYCLES,
    ni_overhead: int = NI_OVERHEAD_CYCLES,
    cfifo_overhead: int = CFIFO_OVERHEAD_CYCLES,
) -> GatewaySystem:
    """The analysis model instantiated with the architecture's measured costs.

    ``ε_cal = ε + entry_overhead``, ``ρ_cal = ρ + ni_overhead`` per
    accelerator, ``δ_cal = δ + cfifo_overhead``.  The defaults are
    conservative: they upper-bound the per-sample costs observed on the
    cycle-level model across entry-copy, accelerator and block-size sweeps,
    so conformance checks against the calibrated bounds hold with margin —
    exactly as the paper instantiates its analysis with the prototype's
    measured ``ε = 15``.
    """
    return replace(
        system,
        accelerators=tuple(
            replace(a, rho=a.rho + ni_overhead) for a in system.accelerators
        ),
        entry_copy=system.entry_copy + entry_overhead,
        exit_copy=system.exit_copy + cfifo_overhead,
    )


@dataclass(frozen=True)
class StreamBounds:
    """The Eq. 2–5 bounds for one stream, in cycles (rates in samples/cycle)."""

    tau_hat: int
    epsilon_hat: int
    gamma: int
    guaranteed_throughput: Fraction
    sample_latency: Fraction

    def to_dict(self) -> dict[str, Any]:
        return {
            "tau_hat": self.tau_hat,
            "epsilon_hat": self.epsilon_hat,
            "gamma": self.gamma,
            "guaranteed_throughput": float(self.guaranteed_throughput),
            "sample_latency": float(self.sample_latency),
        }


def bounds_for(system: GatewaySystem, stream_name: str) -> StreamBounds:
    """All closed-form bounds for ``stream_name`` (block sizes must be set)."""
    return StreamBounds(
        tau_hat=tau_hat(system, stream_name),
        epsilon_hat=epsilon_hat(system, stream_name),
        gamma=gamma(system, stream_name),
        guaranteed_throughput=guaranteed_throughput(system, stream_name),
        sample_latency=sample_latency_bound(system, stream_name),
    )


@dataclass(frozen=True)
class Violation:
    """One observed quantity exceeding its bound — a refinement bug."""

    stream: str
    quantity: str  # "block_time" | "wait" | "turnaround" | "throughput"
    observed: int | float | Fraction
    bound: int | float | Fraction
    block_index: int | None = None

    def __str__(self) -> str:
        where = f" (block {self.block_index})" if self.block_index is not None else ""
        if self.quantity == "throughput":
            return (
                f"VIOLATION {self.stream}: achieved throughput "
                f"{float(self.observed):.6f} < guaranteed {float(self.bound):.6f}"
            )
        return (
            f"VIOLATION {self.stream}: {self.quantity}{where} = "
            f"{self.observed} exceeds bound {self.bound}"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "stream": self.stream,
            "quantity": self.quantity,
            "observed": float(self.observed),
            "bound": float(self.bound),
            "block_index": self.block_index,
        }


@dataclass(frozen=True)
class StreamConformance:
    """Observed-vs-bound comparison for one stream."""

    stream: str
    eta: int
    blocks_observed: int
    bounds: StreamBounds
    worst_block_time: int | None
    worst_wait: int | None
    worst_turnaround: int | None
    achieved_throughput: Fraction | None
    violations: tuple[Violation, ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    # -- margins (bound − worst observed; None when nothing was observed) --
    @property
    def block_time_margin(self) -> int | None:
        if self.worst_block_time is None:
            return None
        return self.bounds.tau_hat - self.worst_block_time

    @property
    def wait_margin(self) -> int | None:
        if self.worst_wait is None:
            return None
        return self.bounds.epsilon_hat - self.worst_wait

    @property
    def turnaround_margin(self) -> int | None:
        if self.worst_turnaround is None:
            return None
        return self.bounds.gamma - self.worst_turnaround

    @property
    def throughput_margin(self) -> Fraction | None:
        if self.achieved_throughput is None:
            return None
        return self.achieved_throughput - self.bounds.guaranteed_throughput

    def to_dict(self) -> dict[str, Any]:
        return {
            "stream": self.stream,
            "eta": self.eta,
            "blocks_observed": self.blocks_observed,
            "ok": self.ok,
            "bounds": self.bounds.to_dict(),
            "observed": {
                "worst_block_time": self.worst_block_time,
                "worst_wait": self.worst_wait,
                "worst_turnaround": self.worst_turnaround,
                "achieved_throughput": (
                    float(self.achieved_throughput)
                    if self.achieved_throughput is not None
                    else None
                ),
            },
            "margins": {
                "block_time": self.block_time_margin,
                "wait": self.wait_margin,
                "turnaround": self.turnaround_margin,
                "throughput": (
                    float(self.throughput_margin)
                    if self.throughput_margin is not None
                    else None
                ),
            },
            "violations": [v.to_dict() for v in self.violations],
        }


@dataclass(frozen=True)
class ConformanceReport:
    """Conformance results for every checked stream."""

    streams: tuple[StreamConformance, ...]

    @property
    def ok(self) -> bool:
        return all(s.ok for s in self.streams)

    @property
    def violations(self) -> tuple[Violation, ...]:
        return tuple(v for s in self.streams for v in s.violations)

    def summary(self) -> str:
        """Fixed-width margins table; violations appended loudly."""
        header = (
            f"{'stream':<12} {'blocks':>6} {'τ obs/bound':>14} {'ε obs/bound':>14} "
            f"{'γ obs/bound':>14} {'thru obs≥guar':>16} {'status':>8}"
        )
        lines = [header, "-" * len(header)]
        for s in self.streams:
            def pair(obs, bound):
                return f"{obs if obs is not None else '-'}/{bound}"

            thru = (
                f"{float(s.achieved_throughput):.5f}≥{float(s.bounds.guaranteed_throughput):.5f}"
                if s.achieved_throughput is not None
                else "-"
            )
            lines.append(
                f"{s.stream:<12} {s.blocks_observed:>6} "
                f"{pair(s.worst_block_time, s.bounds.tau_hat):>14} "
                f"{pair(s.worst_wait, s.bounds.epsilon_hat):>14} "
                f"{pair(s.worst_turnaround, s.bounds.gamma):>14} "
                f"{thru:>16} {'OK' if s.ok else 'VIOLATED':>8}"
            )
        if self.ok:
            lines.append("all observed blocks within the Eq. 2–5 bounds "
                         "(temporal refinement holds)")
        else:
            lines.append("")
            lines.append(f"*** {len(self.violations)} BOUND VIOLATION(S) — "
                         "the temporal-refinement claim is broken ***")
            for v in self.violations:
                lines.append(f"  {v}")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "streams": [s.to_dict() for s in self.streams],
            "violations": [v.to_dict() for v in self.violations],
        }


def check_stream(
    system: GatewaySystem, metrics: StreamMetrics, wait_slack: int = 0
) -> StreamConformance:
    """Compare one stream's observations against its bounds.

    ``system`` must contain a stream of the same name with a block size;
    when the simulated block size differs from the model's, that is a
    configuration error, not a refinement violation, so it raises.

    ``wait_slack`` is the scheduling-quantum allowance on the Eq. 3 wait
    check only: the entry gateway discovers admissibility by polling, so an
    observed completion-to-admission gap can exceed ``ε̂`` by up to one poll
    interval per admission in the window (callers typically pass
    ``poll_interval × |S|``).  The τ̂/γ/throughput checks take no slack.
    """
    spec = system.stream(metrics.name)
    if spec.block_size != metrics.eta:
        raise ParameterError(
            f"stream {metrics.name!r}: simulated η={metrics.eta} but the "
            f"model says η={spec.block_size}"
        )
    b = bounds_for(system, metrics.name)
    violations: list[Violation] = []
    for i, bt in enumerate(metrics.block_times):
        if bt > b.tau_hat:
            violations.append(Violation(metrics.name, "block_time", bt, b.tau_hat, i))
    wait_bound = b.epsilon_hat + wait_slack
    for i, w in enumerate(metrics.waits):
        if w > wait_bound:
            violations.append(Violation(metrics.name, "wait", w, wait_bound, i + 1))
    for i, t in enumerate(metrics.turnarounds):
        if t > b.gamma:
            violations.append(Violation(metrics.name, "turnaround", t, b.gamma, i + 1))
    if metrics.throughput is not None and metrics.throughput < b.guaranteed_throughput:
        violations.append(
            Violation(metrics.name, "throughput", metrics.throughput,
                      b.guaranteed_throughput)
        )
    return StreamConformance(
        stream=metrics.name,
        eta=metrics.eta,
        blocks_observed=len(metrics.block_times),
        bounds=b,
        worst_block_time=metrics.worst_block_time,
        worst_wait=metrics.worst_wait,
        worst_turnaround=metrics.worst_turnaround,
        achieved_throughput=metrics.throughput,
        violations=tuple(violations),
    )


def check_conformance(
    system: GatewaySystem, metrics: Iterable[StreamMetrics], wait_slack: int = 0
) -> ConformanceReport:
    """Check every stream's metrics against ``system``'s bounds."""
    return ConformanceReport(
        streams=tuple(check_stream(system, m, wait_slack=wait_slack) for m in metrics)
    )


# -- per-mode bound windows ---------------------------------------------------
#
# Under online reconfiguration the run is a sequence of *modes*: between two
# transitions the stream set and block sizes are fixed and the Eq. 2–5
# bounds of that mode's system apply.  Checking a churn run against any
# single system flags false violations (a block admitted under mode k and
# measured against mode k+1's bounds, or a wait spanning a transition's
# quiesce time); instead each mode is checked in isolation against its own
# bounds, with the wait/turnaround chains reset at every transition.


@dataclass(frozen=True)
class ModeWindow:
    """One steady mode of a reconfigurable run.

    The window covers blocks *admitted* in ``[start, end)`` (``end=None``
    = run end); transitions themselves (quiesce → reprogram) fall between
    windows, so no steady-state bound is asserted over them.
    """

    index: int
    start: int
    end: int | None
    system: GatewaySystem

    def contains(self, time: int) -> bool:
        return self.start <= time and (self.end is None or time < self.end)

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "start": self.start,
            "end": self.end,
            "streams": {
                s.name: s.block_size for s in self.system.streams
            },
        }


def slice_stream_window(
    admissions: "list[int] | tuple[int, ...]",
    completions: "list[int] | tuple[int, ...]",
    start: int,
    end: int | None,
) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """The (admissions, completions) pairs of blocks admitted in a window.

    Only completed blocks are returned (a block still in flight at run end
    has no measurable quantities); admissions are monotone, so the slice is
    contiguous.
    """
    idxs = [
        i
        for i, a in enumerate(admissions)
        if i < len(completions) and start <= a and (end is None or a < end)
    ]
    if not idxs:
        return (), ()
    k0, k1 = idxs[0], idxs[-1] + 1
    return tuple(admissions[k0:k1]), tuple(completions[k0:k1])


def _window_metrics(
    name: str, eta: int, admissions: tuple[int, ...],
    completions: tuple[int, ...], output_ratio: Fraction,
) -> StreamMetrics:
    """Per-window :class:`StreamMetrics` rebuilt from sliced timestamps."""
    n = len(completions)
    block_times = tuple(c - a for a, c in zip(admissions, completions))
    waits = tuple(a - c for c, a in zip(completions, admissions[1:]))
    turnarounds = tuple(c2 - c1 for c1, c2 in zip(completions, completions[1:]))
    throughput = None
    if n >= 2 and completions[-1] > completions[0]:
        throughput = Fraction(eta * (n - 1), completions[-1] - completions[0])
    return StreamMetrics(
        name=name,
        eta=eta,
        blocks_done=n,
        samples_in=eta * n,
        samples_out=int(eta * n * output_ratio),
        block_times=block_times,
        waits=waits,
        turnarounds=turnarounds,
        throughput=throughput,
        first_output_at=completions[0] if completions else None,
        last_output_at=completions[-1] if completions else None,
        in_high_water=None,
        out_high_water=None,
    )


@dataclass(frozen=True)
class ModeConformance:
    """Conformance of one mode window, plus its sliced timestamp spans."""

    window: ModeWindow
    report: ConformanceReport
    #: stream name -> (admissions, completions) sliced to the window; feeds
    #: :func:`attribute_conformance` so violation windows index correctly
    spans: dict[str, tuple[tuple[int, ...], tuple[int, ...]]]

    @property
    def ok(self) -> bool:
        return self.report.ok

    def to_dict(self) -> dict[str, Any]:
        return {"window": self.window.to_dict(), **self.report.to_dict()}


@dataclass(frozen=True)
class ModalConformanceReport:
    """Eq. 2–5 conformance of a reconfigurable run, one report per mode."""

    modes: tuple[ModeConformance, ...]

    @property
    def ok(self) -> bool:
        return all(m.ok for m in self.modes)

    @property
    def violations(self) -> tuple[Violation, ...]:
        return tuple(v for m in self.modes for v in m.report.violations)

    def merged(self) -> ConformanceReport:
        """All modes' per-stream results flattened into one report."""
        return ConformanceReport(
            streams=tuple(s for m in self.modes for s in m.report.streams)
        )

    def summary(self) -> str:
        lines = []
        for m in self.modes:
            end = m.window.end if m.window.end is not None else "end"
            lines.append(
                f"mode {m.window.index} [{m.window.start}, {end}): "
                f"{len(m.report.streams)} stream(s)"
            )
            lines.append(m.report.summary())
            lines.append("")
        status = "OK" if self.ok else f"{len(self.violations)} VIOLATION(S)"
        lines.append(f"modal conformance over {len(self.modes)} mode(s): {status}")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "modes": [m.to_dict() for m in self.modes],
            "violations": [v.to_dict() for v in self.violations],
        }


def check_modal_conformance(
    windows: Iterable[ModeWindow],
    spans: dict[str, Any],
    wait_slack: int = 0,
    calibrate: bool = True,
) -> ModalConformanceReport:
    """Check each mode window against its own system's bounds.

    ``spans`` maps stream name → an object with ``admissions``/
    ``completions`` lists (a stream binding qualifies) or a plain pair.
    Streams absent from a window's system (not yet joined / already left)
    are skipped in that window; streams with no completed block in the
    window contribute an empty observation.
    """
    modes = []
    for window in windows:
        model = calibrated_system(window.system) if calibrate else window.system
        stream_reports = []
        window_spans: dict[str, tuple[tuple[int, ...], tuple[int, ...]]] = {}
        for spec in model.streams:
            span = spans.get(spec.name)
            if span is None:
                continue
            if hasattr(span, "admissions"):
                admissions, completions = span.admissions, span.completions
                ratio = getattr(span, "output_ratio", Fraction(1))
            else:
                admissions, completions = span
                ratio = Fraction(1)
            adm, comp = slice_stream_window(
                admissions, completions, window.start, window.end
            )
            window_spans[spec.name] = (adm, comp)
            metrics = _window_metrics(
                spec.name, spec.block_size, adm, comp, ratio
            )
            stream_reports.append(
                check_stream(model, metrics, wait_slack=wait_slack)
            )
        modes.append(
            ModeConformance(
                window=window,
                report=ConformanceReport(streams=tuple(stream_reports)),
                spans=window_spans,
            )
        )
    return ModalConformanceReport(modes=tuple(modes))


def attribute_modal_conformance(
    modal: ModalConformanceReport,
    events: Iterable[dict[str, Any]],
    pad: int = 0,
    secondary: Iterable[dict[str, Any]] = (),
) -> AttributedReport:
    """Trace every mode's violations to injected faults / transition records.

    The per-mode sliced spans index each violation's ``block_index`` into
    the right timestamps; the merged result carries every mode's streams,
    so ``fully_attributed`` covers the whole churn run.

    Each mode's ``pad`` is widened by the transition gap separating it from
    the previous window (windows cover steady state only — the quiesce →
    reprogram interval falls between them).  A first-block violation right
    after a transition is then explained by an event that fired inside that
    gap: the transition itself, or a fault landing mid-switch.  Generated
    multi-mode scenarios lean on this — their churn schedules make
    gap-straddling violations routine rather than exceptional.
    """
    injected = tuple(events)
    secondary = tuple(secondary)
    attributions: list[Attribution] = []
    prev_end: int | None = None
    for mode in modal.modes:
        gap = 0
        if prev_end is not None and mode.window.start > prev_end:
            gap = mode.window.start - prev_end
        partial = attribute_conformance(
            mode.report, injected, mode.spans, pad=pad + gap,
            secondary=secondary,
        )
        attributions.extend(partial.attributions)
        prev_end = mode.window.end
    return AttributedReport(
        report=modal.merged(),
        attributions=tuple(attributions),
        injected=injected,
    )


# -- fault attribution -------------------------------------------------------
#
# Under fault injection, bound violations are *expected*; what matters is
# that every violation can be traced back to an injected fault.  A violation
# that no fault explains within its observation window is a genuine
# refinement bug hiding behind the noise.


@dataclass(frozen=True)
class Attribution:
    """One violation paired with the injected faults that explain it."""

    violation: Violation
    #: cycle window the violated quantity was observed over (``hi`` may be
    #: ``None`` for open-ended quantities such as throughput)
    window: tuple[int, int | None]
    #: injected-fault records (from ``FaultInjector.events``) active in the
    #: window; empty means the violation is unexplained
    causes: tuple[dict[str, Any], ...]

    @property
    def attributed(self) -> bool:
        return bool(self.causes)

    def to_dict(self) -> dict[str, Any]:
        return {
            "violation": self.violation.to_dict(),
            "window": list(self.window),
            "causes": [dict(c) for c in self.causes],
            "attributed": self.attributed,
        }


@dataclass(frozen=True)
class AttributedReport:
    """A conformance report with every violation traced to its cause."""

    report: ConformanceReport
    attributions: tuple[Attribution, ...]
    #: every injected-fault record considered (chronological)
    injected: tuple[dict[str, Any], ...]

    @property
    def unattributed(self) -> tuple[Violation, ...]:
        """Violations no injected fault explains — genuine refinement bugs."""
        return tuple(a.violation for a in self.attributions if not a.attributed)

    @property
    def fully_attributed(self) -> bool:
        return not self.unattributed

    def summary(self) -> str:
        lines = [
            f"{len(self.injected)} fault(s) injected, "
            f"{len(self.attributions)} bound violation(s)"
        ]
        for a in self.attributions:
            tag = ("<- " + ", ".join(sorted({c["kind"] for c in a.causes}))
                   if a.attributed else "<- UNEXPLAINED")
            lines.append(f"  {a.violation} {tag}")
        if self.fully_attributed:
            lines.append("every violation is attributed to an injected fault")
        else:
            lines.append(
                f"*** {len(self.unattributed)} violation(s) have no injected "
                "cause — possible refinement bug ***"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.report.ok,
            "fully_attributed": self.fully_attributed,
            "injected": [dict(e) for e in self.injected],
            "attributions": [a.to_dict() for a in self.attributions],
            "unattributed": [v.to_dict() for v in self.unattributed],
        }


def violation_window(
    violation: Violation,
    admissions: "list[int] | tuple[int, ...]",
    completions: "list[int] | tuple[int, ...]",
) -> tuple[int, int | None]:
    """Cycle window over which a violated quantity was observed.

    Mirrors how :func:`check_stream` computes each quantity from the
    stream's admission/completion timestamps: block ``b``'s block time runs
    admission→completion of ``b``, its wait runs completion of ``b−1`` →
    admission of ``b``, its turnaround completion of ``b−1`` → completion
    of ``b``; throughput spans the whole run.
    """
    b = violation.block_index
    q = violation.quantity
    if q == "block_time" and b is not None and b < len(completions):
        return admissions[b], completions[b]
    if q == "wait" and b is not None and 0 < b < len(admissions):
        return completions[b - 1], admissions[b]
    if q == "turnaround" and b is not None and 0 < b < len(completions):
        return completions[b - 1], completions[b]
    return 0, None  # throughput (or malformed index): the whole run


def attribute_conformance(
    report: ConformanceReport,
    events: Iterable[dict[str, Any]],
    spans: dict[str, Any],
    pad: int = 0,
    secondary: Iterable[dict[str, Any]] = (),
) -> AttributedReport:
    """Trace each of ``report``'s violations to the injected faults.

    ``events`` are ``FaultInjector.events`` records (each with at least a
    ``"time"`` key).  ``spans`` maps stream name → an object with
    ``admissions``/``completions`` timestamp lists (a
    :class:`~repro.arch.gateway.StreamBinding` qualifies) or a plain
    ``(admissions, completions)`` pair.  A fault explains a violation when
    it fired inside the violation's observation window, widened by ``pad``
    cycles on the low side (faults propagate forward in time only).  An
    event spanning an interval — a reconfiguration transition carries
    ``"until"`` (its completion time) alongside ``"time"`` (its request) —
    matches when the *interval* overlaps the window, so a transition that
    started before a window but completed inside it still explains the
    violations it caused.

    ``secondary`` events (e.g. recovery-log records — a degrade/readmit
    pause is fault fallout, not a refinement bug) may also explain a
    violation but are not listed in :attr:`AttributedReport.injected`.
    """
    injected = tuple(events)
    candidates = injected + tuple(secondary)
    attributions = []
    for violation in report.violations:
        span = spans.get(violation.stream)
        if span is None:
            admissions: tuple[int, ...] = ()
            completions: tuple[int, ...] = ()
        elif hasattr(span, "admissions"):
            admissions, completions = span.admissions, span.completions
        else:
            admissions, completions = span
        lo, hi = violation_window(violation, admissions, completions)
        causes = tuple(
            e for e in candidates
            if e.get("until", e["time"]) >= lo - pad
            and (hi is None or e["time"] <= hi)
        )
        attributions.append(
            Attribution(violation=violation, window=(lo, hi), causes=causes)
        )
    return AttributedReport(
        report=report, attributions=tuple(attributions), injected=injected
    )
