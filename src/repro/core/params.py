"""Parameter objects describing a gateway-managed accelerator chain.

These are the inputs of the paper's analysis (Section V):

* a :class:`StreamSpec` per multiplexed stream ``s ∈ S``: its minimum
  throughput ``μ_s`` (samples per clock cycle), its reconfiguration time
  ``R_s`` (cycles) and — once computed — its block size ``η_s``,
* an :class:`AcceleratorSpec` per accelerator in the shared chain: firing
  duration ``ρ_A`` (cycles per sample),
* a :class:`GatewaySystem` tying them together with the entry-gateway copy
  time ``ε`` and exit-gateway copy time ``δ`` (cycles per sample).

The paper's Virtex-6 prototype instantiates ``ε = 15``, ``ρ_A = δ = 1`` and
``R_s = 4100`` for every stream (Section VI-A); helpers expose those defaults
for the evaluation scripts.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from fractions import Fraction

__all__ = ["StreamSpec", "AcceleratorSpec", "GatewaySystem", "ParameterError"]


class ParameterError(ValueError):
    """Raised for physically meaningless parameters."""


def _frac(x) -> Fraction:
    if isinstance(x, Fraction):
        return x
    if isinstance(x, int):
        return Fraction(x)
    return Fraction(x).limit_denominator(10**12)


@dataclass(frozen=True)
class StreamSpec:
    """One data stream multiplexed over the shared accelerator chain.

    Parameters
    ----------
    name:
        Stream identifier.
    throughput:
        Required minimum throughput ``μ_s`` in **samples per clock cycle**
        (use :meth:`from_rate` for samples/second + clock).
    reconfigure:
        Reconfiguration time ``R_s`` in cycles (state save + restore for a
        context switch to this stream).
    block_size:
        Block size ``η_s`` in samples; ``None`` until computed.
    """

    name: str
    throughput: Fraction
    reconfigure: int
    block_size: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "throughput", _frac(self.throughput))
        if self.throughput <= 0:
            raise ParameterError(f"stream {self.name!r}: throughput must be positive")
        if self.reconfigure < 0:
            raise ParameterError(f"stream {self.name!r}: negative reconfiguration time")
        if self.block_size is not None and self.block_size < 1:
            raise ParameterError(f"stream {self.name!r}: block size must be >= 1")

    @classmethod
    def from_rate(
        cls,
        name: str,
        samples_per_second: float | int | Fraction,
        clock_hz: float | int | Fraction,
        reconfigure: int,
        block_size: int | None = None,
    ) -> "StreamSpec":
        """Build a spec from a rate in samples/s and a clock frequency."""
        mu = _frac(samples_per_second) / _frac(clock_hz)
        return cls(name, mu, reconfigure, block_size)

    def with_block_size(self, eta: int) -> "StreamSpec":
        """Copy with the block size fixed."""
        return replace(self, block_size=int(eta))


@dataclass(frozen=True)
class AcceleratorSpec:
    """One accelerator in the shared chain: ``rho`` cycles per sample."""

    name: str
    rho: int

    def __post_init__(self) -> None:
        if self.rho < 0:
            raise ParameterError(f"accelerator {self.name!r}: negative firing duration")


@dataclass(frozen=True)
class GatewaySystem:
    """An entry/exit-gateway pair sharing a chain of accelerators.

    Parameters
    ----------
    accelerators:
        The shared chain, in dataflow order.
    streams:
        All streams ``S`` multiplexed over the chain (round-robin order).
    entry_copy:
        ``ε`` — entry-gateway cycles per sample (15 in the prototype).
    exit_copy:
        ``δ`` — exit-gateway cycles per sample (1 in the prototype).
    ni_capacity:
        Capacity of the network-interface FIFOs between the gateways and the
        accelerators (``α1 = α2 = 2`` tokens in the paper's CSDF model).
    """

    accelerators: tuple[AcceleratorSpec, ...]
    streams: tuple[StreamSpec, ...]
    entry_copy: int = 15
    exit_copy: int = 1
    ni_capacity: int = 2

    def __post_init__(self) -> None:
        if not self.accelerators:
            raise ParameterError("a gateway system needs at least one accelerator")
        if not self.streams:
            raise ParameterError("a gateway system needs at least one stream")
        if self.entry_copy < 0 or self.exit_copy < 0:
            raise ParameterError("copy times must be non-negative")
        if self.ni_capacity < 1:
            raise ParameterError("NI FIFOs need capacity >= 1")
        names = [s.name for s in self.streams]
        if len(set(names)) != len(names):
            raise ParameterError("duplicate stream names")
        object.__setattr__(self, "accelerators", tuple(self.accelerators))
        object.__setattr__(self, "streams", tuple(self.streams))

    # -- derived quantities --------------------------------------------------
    @property
    def c0(self) -> int:
        """``max(ε, ρ_A, δ)`` — the per-sample bottleneck stage (Eq. 2)."""
        return max(self.entry_copy, self.exit_copy, *(a.rho for a in self.accelerators))

    @property
    def flush_stages(self) -> int:
        """Pipeline-flush term of Eq. 2.

        With one shared accelerator the paper's bound is ``(η_s + 2)·c0``:
        the "+2" empties the accelerator and the exit-gateway.  For a chain
        of ``A`` accelerators the pipeline is deeper and the flush term
        generalises to ``A + 1``.
        """
        return len(self.accelerators) + 1

    def stream(self, name: str) -> StreamSpec:
        for s in self.streams:
            if s.name == name:
                return s
        raise ParameterError(f"unknown stream {name!r}")

    def with_block_sizes(self, sizes: dict[str, int]) -> "GatewaySystem":
        """Copy with block sizes assigned to (a subset of) the streams."""
        unknown = set(sizes) - {s.name for s in self.streams}
        if unknown:
            raise ParameterError(f"unknown streams: {sorted(unknown)}")
        streams = tuple(
            s.with_block_size(sizes[s.name]) if s.name in sizes else s for s in self.streams
        )
        return replace(self, streams=streams)

    def require_block_sizes(self) -> None:
        missing = [s.name for s in self.streams if s.block_size is None]
        if missing:
            raise ParameterError(f"streams without block sizes: {missing}")
