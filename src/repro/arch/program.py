"""The application support library (paper Section IV-B).

"Accelerators are chained together at run-time by a description written by
a programmer which describes the flow of data between tiles.  A support
library abstracts the implementation details and allows a programmer to
simply connect blocks of functionality."

:class:`StreamProgram` is that library for the simulated MPSoC: declare
tasks, shared accelerator chains, gateway-multiplexed streams and plain
software channels by name, then :meth:`build` materialises the whole system
— ring stations, C-FIFOs, gateway pairs, task scheduling — and hands back
typed handles.

Task factories receive a dict of their named ports (each a
:class:`~repro.arch.cfifo.CFifo`) and return the task generator::

    def feeder(io):
        def gen():
            for s in samples:
                yield Put(io["out"], s)
        return gen

    prog = StreamProgram("demo")
    prog.add_task("fe", feeder, ports=["out"])
    prog.add_task("sink", drain, ports=["in"])
    prog.add_chain("gw", [CordicKernel()], entry_copy=15)
    prog.add_stream("s0", chain="gw", eta=8,
                    states=[CordicKernel("mix", 0.1).get_state()],
                    src=("fe", "out"), dst=("sink", "in"),
                    reconfigure=4100)
    built = prog.build()
    built.soc.run(until=100_000)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..accel.base import StreamKernel
from ..sim import SimulationError
from .cfifo import CFifo
from .processor import ProcessorTile
from .scheduler import TaskSpec
from .system import MPSoC, SharedChain

__all__ = ["StreamProgram", "BuiltProgram", "ProgramError"]


class ProgramError(SimulationError):
    """Raised for malformed program descriptions."""


@dataclass
class _TaskDecl:
    name: str
    factory: Callable[[dict[str, CFifo]], Callable[[], Any]]
    ports: list[str]
    priority: int = 0
    budget: int = 10**9
    period: int = 10**9


@dataclass
class _ChainDecl:
    name: str
    kernels: list[StreamKernel]
    entry_copy: int = 15
    exit_copy: int = 1
    ni_capacity: int = 2
    context_mode: str = "software"


@dataclass
class _StreamDecl:
    name: str
    chain: str
    eta: int
    states: list[dict[str, Any]]
    src: tuple[str, str]
    dst: tuple[str, str]
    reconfigure: int | None = None
    in_capacity: int | None = None
    out_capacity: int | None = None


@dataclass
class _ChannelDecl:
    name: str
    src: tuple[str, str]
    dst: tuple[str, str]
    capacity: int


@dataclass
class BuiltProgram:
    """Handles into a materialised program."""

    soc: MPSoC
    tiles: dict[str, ProcessorTile]
    chains: dict[str, SharedChain]
    fifos: dict[str, CFifo]

    def run(self, until: int) -> None:
        self.soc.run(until)


class StreamProgram:
    """Declarative description of a stream-processing application."""

    def __init__(self, name: str = "app") -> None:
        self.name = name
        self._tasks: dict[str, _TaskDecl] = {}
        self._chains: dict[str, _ChainDecl] = {}
        self._streams: dict[str, _StreamDecl] = {}
        self._channels: dict[str, _ChannelDecl] = {}

    # -- declarations -----------------------------------------------------
    def add_task(
        self,
        name: str,
        factory: Callable[[dict[str, CFifo]], Callable[[], Any]],
        ports: list[str],
        priority: int = 0,
        budget: int = 10**9,
        period: int = 10**9,
    ) -> None:
        """Declare a software task with named FIFO ports."""
        if name in self._tasks:
            raise ProgramError(f"duplicate task {name!r}")
        self._tasks[name] = _TaskDecl(name, factory, list(ports), priority, budget, period)

    def add_chain(
        self,
        name: str,
        kernels: list[StreamKernel],
        entry_copy: int = 15,
        exit_copy: int = 1,
        ni_capacity: int = 2,
        context_mode: str = "software",
    ) -> None:
        """Declare a gateway-managed shared accelerator chain."""
        if name in self._chains:
            raise ProgramError(f"duplicate chain {name!r}")
        if not kernels:
            raise ProgramError(f"chain {name!r} needs at least one kernel")
        self._chains[name] = _ChainDecl(
            name, list(kernels), entry_copy, exit_copy, ni_capacity, context_mode
        )

    def add_stream(
        self,
        name: str,
        chain: str,
        eta: int,
        states: list[dict[str, Any]],
        src: tuple[str, str],
        dst: tuple[str, str],
        reconfigure: int | None = None,
        in_capacity: int | None = None,
        out_capacity: int | None = None,
    ) -> None:
        """Declare a stream multiplexed over a chain, between two task ports."""
        if name in self._streams:
            raise ProgramError(f"duplicate stream {name!r}")
        self._streams[name] = _StreamDecl(
            name, chain, int(eta), list(states), tuple(src), tuple(dst),
            reconfigure, in_capacity, out_capacity,
        )

    def add_channel(
        self, name: str, src: tuple[str, str], dst: tuple[str, str], capacity: int
    ) -> None:
        """Declare a plain task-to-task software FIFO (no accelerators)."""
        if name in self._channels:
            raise ProgramError(f"duplicate channel {name!r}")
        self._channels[name] = _ChannelDecl(name, tuple(src), tuple(dst), int(capacity))

    # -- validation ----------------------------------------------------------
    def _check(self) -> None:
        if not self._tasks:
            raise ProgramError("a program needs at least one task")
        port_refs: dict[tuple[str, str], str] = {}

        def claim(endpoint: tuple[str, str], what: str) -> None:
            task, port = endpoint
            if task not in self._tasks:
                raise ProgramError(f"{what}: unknown task {task!r}")
            if port not in self._tasks[task].ports:
                raise ProgramError(f"{what}: task {task!r} has no port {port!r}")
            if endpoint in port_refs:
                raise ProgramError(
                    f"{what}: port {task}.{port} already used by {port_refs[endpoint]}"
                )
            port_refs[endpoint] = what

        for s in self._streams.values():
            if s.chain not in self._chains:
                raise ProgramError(f"stream {s.name!r}: unknown chain {s.chain!r}")
            n_kernels = len(self._chains[s.chain].kernels)
            if len(s.states) != n_kernels:
                raise ProgramError(
                    f"stream {s.name!r}: {len(s.states)} contexts for "
                    f"{n_kernels} kernels"
                )
            claim(s.src, f"stream {s.name!r} source")
            claim(s.dst, f"stream {s.name!r} sink")
        for c in self._channels.values():
            claim(c.src, f"channel {c.name!r} source")
            claim(c.dst, f"channel {c.name!r} sink")
        unused = {
            (t.name, p)
            for t in self._tasks.values()
            for p in t.ports
            if (t.name, p) not in port_refs
        }
        if unused:
            raise ProgramError(f"unconnected ports: {sorted(unused)}")

    # -- build --------------------------------------------------------------
    def build(self, trace: bool = False) -> BuiltProgram:
        """Materialise the program on a fresh MPSoC."""
        self._check()
        stations = len(self._tasks) + sum(
            2 + len(c.kernels) for c in self._chains.values()
        )
        soc = MPSoC(n_stations=max(2, stations), trace=trace)

        tiles = {name: soc.add_processor(name) for name in self._tasks}

        # precompute gateway station numbers (claimed in declaration order)
        next_station = len(self._tasks)
        chain_stations: dict[str, tuple[int, int]] = {}
        for cname, c in self._chains.items():
            entry = next_station
            exit_ = entry + 1 + len(c.kernels)
            chain_stations[cname] = (entry, exit_)
            next_station = exit_ + 1

        fifos: dict[str, CFifo] = {}
        port_map: dict[str, dict[str, CFifo]] = {t: {} for t in self._tasks}

        # plain channels
        for c in self._channels.values():
            fifo = soc.software_fifo(
                tiles[c.src[0]], tiles[c.dst[0]], c.capacity, name=c.name
            )
            fifos[c.name] = fifo
            port_map[c.src[0]][c.src[1]] = fifo
            port_map[c.dst[0]][c.dst[1]] = fifo

        # gateway streams: producer -> entry gateway, exit gateway -> consumer
        chain_configs: dict[str, list[dict[str, Any]]] = {c: [] for c in self._chains}
        for s in self._streams.values():
            entry_station, exit_station = chain_stations[s.chain]
            in_cap = s.in_capacity or max(2 * s.eta, 8)
            in_fifo = soc.software_fifo(
                tiles[s.src[0]], entry_station, in_cap, name=f"{s.name}.in"
            )
            ratio = 1
            for k in self._chains[s.chain].kernels:
                ratio = ratio * k.output_ratio
            out_cap = s.out_capacity or max(int(s.eta * ratio) * 2, 8)
            out_fifo = soc.software_fifo(
                exit_station, tiles[s.dst[0]], out_cap, name=f"{s.name}.out"
            )
            fifos[f"{s.name}.in"] = in_fifo
            fifos[f"{s.name}.out"] = out_fifo
            port_map[s.src[0]][s.src[1]] = in_fifo
            port_map[s.dst[0]][s.dst[1]] = out_fifo
            chain_configs[s.chain].append({
                "name": s.name, "eta": s.eta, "in_fifo": in_fifo,
                "out_fifo": out_fifo, "states": s.states,
                "reconfigure_cycles": s.reconfigure,
            })

        chains: dict[str, SharedChain] = {}
        for cname, c in self._chains.items():
            if not chain_configs[cname]:
                raise ProgramError(f"chain {cname!r} has no streams")
            chains[cname] = soc.shared_chain(
                cname, c.kernels, chain_configs[cname],
                entry_copy=c.entry_copy, exit_copy=c.exit_copy,
                ni_capacity=c.ni_capacity, context_mode=c.context_mode,
            )

        for tname, decl in self._tasks.items():
            gen_factory = decl.factory(port_map[tname])
            tiles[tname].add_task(TaskSpec(
                tname, gen_factory, priority=decl.priority,
                budget=decl.budget, period=decl.period,
            ))
            tiles[tname].start()

        return BuiltProgram(soc, tiles, chains, fifos)
