"""The low-cost dual-ring interconnect ([11], [14]; paper Section IV).

Two unidirectional rings connect all tiles: the **data ring** carries
payload flits in one direction and the **credit ring** carries flow-control
credits in the opposite direction.  Key properties modelled:

* **posted writes** — "a write completes for a producer when the
  interconnect accepts, it does not wait until the write actually arrives"
  (Section IV-A): :meth:`DualRing.post` returns an acceptance event plus a
  separate delivery event,
* **lossless, guaranteed acceptance** — destination tiles always accept;
  there is no network-level flow control for memory writes (end-to-end
  credits, where needed, are the NI's job — :mod:`repro.arch.ni`),
* **guaranteed throughput** — each directed link forwards at most one flit
  per cycle, flits already on the ring have priority over new injections
  (modelled with per-link FIFO grant queues), so a flit's latency is bounded
  by hops × hop_latency plus bounded blocking.
"""

from __future__ import annotations

from typing import Any, Callable

from ..sim import Event, Signal, SimulationError, Simulator, Tracer

__all__ = ["DualRing", "RingError"]


class RingError(SimulationError):
    """Raised on bad station indices or malformed sends."""


class _Link:
    """One directed ring segment: forwards at most one flit per cycle."""

    __slots__ = ("sim", "grant")

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.grant = Signal(sim, initial=1)  # the link is free

    def traverse(self, hop_latency: int):
        """Generator: occupy the link for one injection slot, then hop."""
        yield self.grant.acquire(1)
        # the flit occupies the link's injection slot for one cycle,
        # then needs hop_latency cycles to reach the next station
        yield self.sim.timeout(1)
        self.grant.release(1)
        if hop_latency > 1:
            yield self.sim.timeout(hop_latency - 1)


class DualRing:
    """Data + credit rings over ``n_stations`` tiles.

    Stations are integers ``0 .. n-1``; the data ring runs in increasing
    direction, the credit ring in decreasing direction (credits travel
    "in the opposite direction as the data" [11]).
    """

    DATA = "data"
    CREDIT = "credit"

    def __init__(
        self,
        sim: Simulator,
        n_stations: int,
        hop_latency: int = 1,
        tracer: Tracer | None = None,
    ) -> None:
        if n_stations < 2:
            raise RingError("a ring needs at least two stations")
        if hop_latency < 1:
            raise RingError("hop latency must be at least one cycle")
        self.sim = sim
        self.n = int(n_stations)
        self.hop_latency = int(hop_latency)
        self.tracer = tracer
        self._links = {
            self.DATA: [_Link(sim) for _ in range(self.n)],
            self.CREDIT: [_Link(sim) for _ in range(self.n)],
        }
        self.flits_sent = {self.DATA: 0, self.CREDIT: 0}
        self.flits_dropped = {self.DATA: 0, self.CREDIT: 0}
        #: optional :class:`repro.sim.faults.FaultInjector` link-fault hook
        self.fault_injector = None

    # -- helpers ----------------------------------------------------------
    def _check_station(self, station: int) -> None:
        if not 0 <= station < self.n:
            raise RingError(f"station {station} outside ring of {self.n}")

    def hops(self, src: int, dst: int, ring: str) -> int:
        """Number of links a flit crosses from src to dst on the given ring."""
        self._check_station(src)
        self._check_station(dst)
        if src == dst:
            raise RingError("src and dst stations must differ")
        if ring == self.DATA:
            return (dst - src) % self.n
        if ring == self.CREDIT:
            return (src - dst) % self.n
        raise RingError(f"unknown ring {ring!r}")

    def _route(self, src: int, ring: str, hops: int) -> list[_Link]:
        step = 1 if ring == self.DATA else -1
        links = self._links[ring]
        out = []
        cur = src
        for _ in range(hops):
            idx = cur if step == 1 else (cur - 1) % self.n
            out.append(links[idx])
            cur = (cur + step) % self.n
        return out

    # -- sending ------------------------------------------------------------
    def post(
        self,
        src: int,
        dst: int,
        payload: Any = None,
        ring: str = DATA,
        on_delivery: Callable[[Any], None] | None = None,
    ) -> tuple[Event, Event]:
        """Posted write: returns ``(accepted, delivered)`` events.

        ``accepted`` fires when the first link grants injection (the
        producer's write "completes"); ``delivered`` fires when the flit
        reaches ``dst`` — ``on_delivery(payload)`` runs at that instant.
        """
        hops = self.hops(src, dst, ring)
        route = self._route(src, ring, hops)
        accepted = self.sim.event()
        delivered = self.sim.event()
        self.flits_sent[ring] += 1
        injector = self.fault_injector
        if injector is not None:
            extra_delay, dropped = injector.ring_fault(ring, src, dst)
        else:
            extra_delay, dropped = 0, False

        def flit():
            first = True
            for link in route:
                yield from link.traverse(self.hop_latency)
                if first:
                    accepted.succeed()
                    first = False
            if extra_delay:
                yield self.sim.timeout(extra_delay)
            if dropped:
                # the flit is lost in transit; the producer's posted write
                # already completed, so only delivery-side effects vanish
                self.flits_dropped[ring] += 1
                return
            if self.tracer:
                self.tracer.log(self.sim.now, f"ring.{ring}", "deliver",
                                src=src, dst=dst)
            if on_delivery is not None:
                on_delivery(payload)
            delivered.succeed(payload)

        self.sim.process(flit(), name=f"flit:{ring}:{src}->{dst}")
        return accepted, delivered
