"""The low-cost dual-ring interconnect ([11], [14]; paper Section IV).

Two unidirectional rings connect all tiles: the **data ring** carries
payload flits in one direction and the **credit ring** carries flow-control
credits in the opposite direction.  Key properties modelled:

* **posted writes** — "a write completes for a producer when the
  interconnect accepts, it does not wait until the write actually arrives"
  (Section IV-A): :meth:`DualRing.post` returns an acceptance event plus a
  separate delivery event,
* **lossless, guaranteed acceptance** — destination tiles always accept;
  there is no network-level flow control for memory writes (end-to-end
  credits, where needed, are the NI's job — :mod:`repro.arch.ni`),
* **guaranteed throughput** — each directed link forwards at most one flit
  per cycle, flits already on the ring have priority over new injections
  (modelled with per-link FIFO grant queues), so a flit's latency is bounded
  by hops × hop_latency plus bounded blocking.

Fast path (compiled transit; DESIGN.md §7)
------------------------------------------

Because flits already on the ring have priority and each link forwards one
flit per cycle, an *uncongested* transit is fully predictable at injection
time: a flit injected at cycle ``t`` over ``hops`` links is accepted at
``t + hop_latency`` and delivered at ``t + hops * hop_latency``, occupying
link ``k``'s injection slot during ``[t + k*hop_latency, t + k*hop_latency
+ 1)``.  When every link on the route is free at injection (and no fault is
armed), :meth:`DualRing.post` skips the per-hop generator entirely: the
transit is *compiled* into a single self-re-arming calendar entry
(:class:`_FastFlit`, an :class:`~repro.sim.kernel.Event` subclass that is
its own state machine) which performs the per-link grant acquire/release
protocol at the generator's exact calendar positions but carries no
process object, no generator frames and zero per-hop allocations —
acceptance and delivery are the only payload callbacks, firing at their
closed-form instants.

Keeping the grant protocol real (rather than replacing it with a private
reservation table) is what makes the optimisation exact: a compiled flit
holds each link's grant during its occupancy slot, so later slow-path
injections queue behind it in the link's FIFO — and should congestion
appear mid-route, the compiled flit parks in that FIFO at the position the
generator would have, losing only its closed-form schedule (counted in
``flits_demoted``), never its ordering.  The moment any route link is held
at injection, or the fault injector arms a delay/drop for the flit, the
posting falls back to the per-hop generator path.
:meth:`DualRing.post_chain` extends the fusion across a back-to-back burst
(C-FIFO data+wptr): the head flit commits compiled and each later flit is
relayed at its predecessor's acceptance instant, so a chain never
front-runs competing injections.  ``REPRO_NO_FASTPATH=1`` disables the
fast path wholesale; ``tests/property/test_ring_fastpath_differential.py``
holds the two modes to equivalent observable traces and
``benchmarks/bench_ring_fastpath.py`` records the speedup.
"""

from __future__ import annotations

import os
from heapq import heappush as _heappush
from typing import Any, Callable, Sequence

from ..sim import Event, Signal, SimulationError, Simulator, Tracer

__all__ = ["DualRing", "RingError"]


class RingError(SimulationError):
    """Raised on bad station indices or malformed sends."""


class _Link:
    """One directed ring segment: forwards at most one flit per cycle."""

    __slots__ = ("sim", "grant")

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.grant = Signal(sim, initial=1)  # the link is free

    def free(self) -> bool:
        """Is the injection slot grantable right now (no holder, no queue)?"""
        grant = self.grant
        return grant.count >= 1 and not grant._waiters

    def traverse(self, hop_latency: int):
        """Generator: occupy the link for one injection slot, then hop."""
        yield self.grant.acquire(1)
        # the flit occupies the link's injection slot for one cycle,
        # then needs hop_latency cycles to reach the next station
        yield self.sim.timeout(1)
        self.grant.release(1)
        if hop_latency > 1:
            yield self.sim.timeout(hop_latency - 1)


class _FastFlit(Event):
    """One compiled (fused) transit: the generator path without the process.

    The transit's timing is computed in closed form at injection; the only
    *payload* callbacks are the acceptance and the delivery.  Everything
    else is the flit object itself acting as its own calendar entry: it is
    an :class:`~repro.sim.kernel.Event` whose single callback re-arms and
    re-appends it step by step, replaying the generator's per-hop protocol
    — grant acquire, one-cycle occupancy, release, tail sleep — with zero
    per-hop allocations and each side effect at the *exact
    within-cycle dispatch position* the generator would have given it.
    Position fidelity (not just cycle fidelity) is load-bearing: same-cycle
    positions decide link-grant FIFO order and the order in which parked
    producers wake and inject their next flits, so approximating them
    (e.g. one end-of-bucket callback per instant) lets fast and slow runs
    diverge observably a few cycles later.  The differential property in
    ``tests/property/test_ring_fastpath_differential.py`` holds the two
    paths to equivalent traces.

    The grant traffic is real: a compiled flit takes each link's grant for
    its occupancy slot, so competing injections queue behind it FIFO.  If a
    grant does *not* come back immediately (congestion appeared after the
    injection-time check), the flit simply waits in the queue — at the
    position the generator would have occupied — and continues compiled
    once granted.  Only its closed-form schedule is lost; the event is
    counted once per flit in ``DualRing.flits_demoted``.
    """

    __slots__ = ("ring", "direction", "route", "_route_len", "src", "dst",
                 "payload", "on_delivery", "accepted", "delivered", "hop",
                 "demoted", "_state", "_cb")

    # _state values: which protocol step fires when this entry dispatches
    _START = 0       # process-init position: acquire the first hop's grant
    _GRANTED = 1     # holding the grant: start the 1-cycle occupancy
    _OCC_END = 2     # occupancy over: release, then hop bookkeeping
    _HOP_DONE = 3    # trailing (hop_latency - 1)-cycle sleep expired

    def __init__(self, ring):
        # flat Event init (see Timeout): this object is its own calendar
        # entry, re-armed once per protocol step for the whole transit.
        # ``_cb`` → bound ``_step`` → self is a reference cycle, which is
        # why delivered flits are recycled through ``DualRing._flit_pool``
        # instead of being left to the cyclic collector.
        self.sim = ring.sim
        self._cb = [self._step]
        self.callbacks = self._cb
        self._value = None
        self._ok = True
        self._triggered = True
        self._processed = False
        self._cancelled = False
        self.ring = ring

    # -- the compiled state machine ---------------------------------------
    # Each step appends the next calendar entry (this same object) exactly
    # where the generator would have created its next event, so bucket
    # append order — and therefore dispatch order — is identical to the
    # slow path's.
    def launch(self, direction, route, src, dst, payload,
               on_delivery, accepted, delivered) -> None:
        """Arm one transit and take the process-init calendar position.

        Fresh or recycled, the object re-enters the calendar here; the
        trailing ``_schedule(self, 0)`` mirrors ``sim.process(flit())``'s
        init entry.  ``callbacks`` needs no reset — ``_step`` re-armed it
        as its first action on the previous dispatch.
        """
        self.direction = direction
        self.route = route
        self._route_len = len(route)
        self.src = src
        self.dst = dst
        self.payload = payload
        self.on_delivery = on_delivery
        self.accepted = accepted
        self.delivered = delivered
        self.hop = 0
        self.demoted = False
        self._state = self._START
        self._processed = False
        self.sim._schedule(self, 0)

    def _step(self, _ev: Event) -> None:
        """Dispatch one protocol step; the dispatch loop consumed our
        callback list, so re-arm it before anything else.

        The hop-done and next-hop-acquire logic is inlined (rather than
        delegated to :meth:`_acquire_hop`) because this method runs twice
        per hop for every fused flit in a run — the call overhead alone
        is measurable on the macro bench.
        """
        self.callbacks = self._cb
        state = self._state
        sim = self.sim
        if state == self._GRANTED:
            # holding the grant: the 1-cycle injection-slot occupancy
            self._state = self._OCC_END
            when = sim.now + 1
            buckets = sim._buckets
            bucket = buckets.get(when)
            if bucket is None:
                buckets[when] = [self]
                _heappush(sim._times, when)
            else:
                bucket.append(self)
            return
        if state == self._OCC_END:
            # occupancy over: release the grant (waking any queued flit)
            grant = self.route[self.hop].grant
            if grant._waiters:
                grant.release(1)
            else:
                grant._count += 1
            h = self.ring.hop_latency
            if h != 1:
                # mirrors the trailing ``timeout(hop_latency - 1)`` sleep
                self._state = self._HOP_DONE
                when = sim.now + h - 1
                buckets = sim._buckets
                bucket = buckets.get(when)
                if bucket is None:
                    buckets[when] = [self]
                    _heappush(sim._times, when)
                else:
                    bucket.append(self)
                return
            # h == 1: fall through to hop-done
        elif state == self._START:
            self._acquire_hop()
            return
        # hop completed (OCC_END with h == 1, or the _HOP_DONE sleep
        # expired) — at the generator's resume position
        hop = self.hop
        if hop == 0 and self.accepted is not None:
            self.accepted.succeed()
        hop += 1
        self.hop = hop
        if hop == self._route_len:
            self._deliver()
            return
        # inlined _acquire_hop (see its docstring for the position rules)
        grant = self.route[hop].grant
        if not grant._waiters and grant._count >= 1:
            grant._count -= 1
            self._state = self._GRANTED
            sim._active.append(self)
            return
        ev = grant.acquire(1)
        if not ev.triggered and not self.demoted:
            self.demoted = True
            self.ring.flits_demoted[self.direction] += 1
        ev.add_callback(self._parked_grant)

    def _acquire_hop(self) -> None:
        """The hop's grant acquire, at the generator's exact call position.

        The uncontended case takes the grant inline (the count drops at
        the call position, as ``Signal.acquire`` would) and appends this
        object to the live bucket — the same slot the granted acquire
        event would have occupied, minus the event allocation.  A
        contended grant goes through the real ``acquire`` so this flit
        queues in the link's FIFO and fires on release — either way the
        occupancy starts at the slow path's resume position.
        """
        grant = self.route[self.hop].grant
        if not grant._waiters and grant._count >= 1:
            grant._count -= 1
            self._state = self._GRANTED
            self.sim._active.append(self)
            return
        ev = grant.acquire(1)
        if not ev.triggered and not self.demoted:
            # mid-route congestion: the closed-form schedule is lost, but
            # the queue position is the generator's, so ordering and the
            # eventual timing are unchanged
            self.demoted = True
            self.ring.flits_demoted[self.direction] += 1
        ev.add_callback(self._parked_grant)

    def _parked_grant(self, _ev: Event) -> None:
        """A queued grant came back: occupancy starts at the wake position."""
        self._state = self._OCC_END
        sim = self.sim
        when = sim.now + 1
        buckets = sim._buckets
        bucket = buckets.get(when)
        if bucket is None:
            buckets[when] = [self]
            _heappush(sim._times, when)
        else:
            bucket.append(self)

    def _deliver(self) -> None:
        ring = self.ring
        if ring.tracer:
            ring.tracer.log(ring.sim.now, f"ring.{self.direction}", "deliver",
                            src=self.src, dst=self.dst)
        if self.on_delivery is not None:
            self.on_delivery(self.payload)
        if self.delivered is not None:
            self.delivered.succeed(self.payload)
        # transit complete: recycle.  Nothing external holds this object
        # (callers only ever see the accepted/delivered events), and the
        # dispatch loop writes nothing after our callback returns.
        ring._flit_pool.append(self)


class DualRing:
    """Data + credit rings over ``n_stations`` tiles.

    Stations are integers ``0 .. n-1``; the data ring runs in increasing
    direction, the credit ring in decreasing direction (credits travel
    "in the opposite direction as the data" [11]).
    """

    DATA = "data"
    CREDIT = "credit"

    def __init__(
        self,
        sim: Simulator,
        n_stations: int,
        hop_latency: int = 1,
        tracer: Tracer | None = None,
    ) -> None:
        if n_stations < 2:
            raise RingError("a ring needs at least two stations")
        if hop_latency < 1:
            raise RingError("hop latency must be at least one cycle")
        self.sim = sim
        self.n = int(n_stations)
        self.hop_latency = int(hop_latency)
        self.tracer = tracer
        self._links = {
            self.DATA: [_Link(sim) for _ in range(self.n)],
            self.CREDIT: [_Link(sim) for _ in range(self.n)],
        }
        self.flits_sent = {self.DATA: 0, self.CREDIT: 0}
        self.flits_dropped = {self.DATA: 0, self.CREDIT: 0}
        #: flits whose transit was compiled into closed-form callbacks
        self.flits_fast = {self.DATA: 0, self.CREDIT: 0}
        #: flits that went through the per-hop generator path
        self.flits_slow = {self.DATA: 0, self.CREDIT: 0}
        #: compiled flits that hit mid-route congestion and lost their
        #: closed-form schedule (still counted in ``flits_fast``: they kept
        #: the compiled machinery, queueing FIFO like a generator flit)
        self.flits_demoted = {self.DATA: 0, self.CREDIT: 0}
        #: master switch for the fused fast path (kill: REPRO_NO_FASTPATH=1)
        self.fastpath = os.environ.get("REPRO_NO_FASTPATH") != "1"
        #: optional :class:`repro.sim.faults.FaultInjector` link-fault hook
        self.fault_injector = None
        #: components (C-FIFOs, NI channels) that registered for per-source
        #: fast-path take-rate reporting — see :func:`repro.sim.metrics`
        self.clients: list[Any] = []
        self._route_cache: dict[tuple[int, str, int], tuple[_Link, ...]] = {}
        #: recycled compiled-transit records (each is a reference cycle,
        #: so pooling also keeps them away from the cyclic GC)
        self._flit_pool: list[_FastFlit] = []
        self._hops_cache: dict[tuple[int, int, str], int] = {}

    # -- helpers ----------------------------------------------------------
    def _check_station(self, station: int) -> None:
        if not 0 <= station < self.n:
            raise RingError(f"station {station} outside ring of {self.n}")

    def hops(self, src: int, dst: int, ring: str) -> int:
        """Number of links a flit crosses from src to dst on the given ring."""
        self._check_station(src)
        self._check_station(dst)
        if src == dst:
            raise RingError("src and dst stations must differ")
        if ring == self.DATA:
            return (dst - src) % self.n
        if ring == self.CREDIT:
            return (src - dst) % self.n
        raise RingError(f"unknown ring {ring!r}")

    def _route(self, src: int, ring: str, hops: int) -> tuple[_Link, ...]:
        # routes are static, post() is hot: memoise the link tuples
        key = (src, ring, hops)
        route = self._route_cache.get(key)
        if route is None:
            step = 1 if ring == self.DATA else -1
            links = self._links[ring]
            out = []
            cur = src
            for _ in range(hops):
                idx = cur if step == 1 else (cur - 1) % self.n
                out.append(links[idx])
                cur = (cur + step) % self.n
            route = self._route_cache[key] = tuple(out)
        return route

    def _route_free(self, route: list[_Link]) -> bool:
        """Is every route link grantable at this instant?

        The fast-path eligibility predicate.  It is a *prediction*, not a
        guarantee — the route can become congested before the flit reaches
        a later link — but a wrong prediction only costs the closed-form
        schedule, never correctness (see :class:`_FastFlit`).
        """
        for link in route:
            if not link.free():
                return False
        return True

    # -- sending ------------------------------------------------------------
    def post(
        self,
        src: int,
        dst: int,
        payload: Any = None,
        ring: str = DATA,
        on_delivery: Callable[[Any], None] | None = None,
        events: bool = True,
    ) -> tuple[Event | None, Event | None]:
        """Posted write: returns ``(accepted, delivered)`` events.

        ``accepted`` fires when the first link grants injection (the
        producer's write "completes"); ``delivered`` fires when the flit
        reaches ``dst`` — ``on_delivery(payload)`` runs at that instant.
        Fire-and-forget callers (pointer updates, credit returns) that act
        purely through ``on_delivery`` pass ``events=False`` to skip the
        event allocations; the return value is then ``(None, None)``.

        .. warning:: a flit dropped by the fault injector never fires its
           ``delivered`` event — the loss is silent at ring level, exactly
           like the hardware.  Production code must therefore never await
           ``delivered`` without an external watchdog budget; the in-tree
           consumers (:mod:`repro.arch.cfifo`, :mod:`repro.arch.ni`)
           discard it and act through ``on_delivery`` only, with the
           entry-gateway watchdog owning loss recovery.
        """
        # full validation before any counter mutation: a RingError here must
        # not leave flits_sent counting a flit that was never injected
        key = (src, dst, ring)
        hops = self._hops_cache.get(key)
        if hops is None:
            hops = self._hops_cache[key] = self.hops(src, dst, ring)
        if on_delivery is not None and not callable(on_delivery):
            raise RingError(
                f"on_delivery must be callable, got {type(on_delivery).__name__}"
            )
        if events:
            accepted = self.sim.event()
            delivered = self.sim.event()
        else:
            accepted = delivered = None
        self._post_into(src, dst, hops, ring, payload, on_delivery,
                        accepted, delivered)
        return accepted, delivered

    def _post_into(self, src, dst, hops, ring, payload, on_delivery,
                   accepted, delivered) -> bool:
        """Inject one validated flit into pre-created events.

        Decides fast vs slow at the current instant; returns True when the
        flit was fused.  Shared by :meth:`post` and the chain relays so a
        chain flit posts through exactly the code path — and the exact
        fault-injector query position — the unfused caller would have used.
        """
        route = self._route(src, ring, hops)
        self.flits_sent[ring] += 1
        injector = self.fault_injector
        if injector is not None:
            extra_delay, dropped = injector.ring_fault(ring, src, dst)
        else:
            extra_delay, dropped = 0, False

        if self.fastpath and not extra_delay and not dropped:
            # inlined _route_free: this is the hot eligibility check
            for link in route:
                grant = link.grant
                if grant._count < 1 or grant._waiters:
                    break
            else:
                self._post_fast(route, src, dst, ring, payload, on_delivery,
                                accepted, delivered)
                return True
        self._post_slow(route, src, dst, ring, payload, on_delivery,
                        accepted, delivered, extra_delay, dropped)
        return False

    def post_chain(
        self,
        src: int,
        dst: int,
        flits: Sequence[tuple[int, Any, Callable[[Any], None] | None]],
        ring: str = DATA,
        client: Any | None = None,
    ) -> list[tuple[Event, Event | None]] | None:
        """Precompile a burst of back-to-back same-route posted writes.

        ``flits`` is a sequence of ``(offset, payload, on_delivery)``
        triples: flit *i*'s declared ``offset`` is the cycle (relative to
        now) at which the caller's unfused code path would have posted it —
        strictly increasing, starting at 0.  The head flit must be
        fast-eligible *now*; it is committed compiled and each later flit
        is relayed at the previous flit's acceptance instant (exactly when
        the unfused caller, parked on that acceptance, would have posted
        it), re-deciding fast vs slow with the link state of *that* cycle.
        A chain therefore never front-runs competing traffic: under
        contention it degrades to the same sequential arbitration as the
        unfused path, flit by flit.  When the head is not eligible,
        ``None`` is returned with **no state mutated** and the caller
        issues its posts individually.

        The per-flit ``(accepted, delivered)`` pairs are returned
        immediately, so the caller can park on any acceptance.  The
        ``delivered`` slots are ``None``: chain callers are posted-write
        producers that act through their ``on_delivery`` hooks (see the
        warning in :meth:`post`), so the events would never be awaited.
        ``client``, when given, receives per-flit ``flits_fast`` /
        ``flits_slow`` attribution as each flit actually posts.

        A chain is never started while a fault injector is attached: the
        head flit's injector query would be fine, but the caller's unfused
        path may interleave its own injector hooks (e.g. C-FIFO pointer
        loss) between the posts, which a chain cannot reproduce.
        """
        if not self.fastpath or self.fault_injector is not None:
            return None
        key = (src, dst, ring)
        hops = self._hops_cache.get(key)
        if hops is None:
            hops = self._hops_cache[key] = self.hops(src, dst, ring)
        last = -1
        for off, _payload, cb in flits:
            if off <= last:
                raise RingError("chain offsets must be strictly increasing")
            if last < 0 and off != 0:
                raise RingError("chain must start at offset 0")
            last = off
            if cb is not None and not callable(cb):
                raise RingError(
                    f"on_delivery must be callable, got {type(cb).__name__}"
                )
        route = self._route(src, ring, hops)
        if not self._route_free(route):
            return None
        sim = self.sim
        out = [(Event(sim), None) for _ in flits]
        # head flit: compiled commit at the current instant
        self.flits_sent[ring] += 1
        self._post_fast(route, src, dst, ring, flits[0][1], flits[0][2],
                        out[0][0], out[0][1])
        if client is not None:
            client.flits_fast += 1
        for i in range(1, len(flits)):
            _off, payload, cb = flits[i]
            accepted, delivered = out[i]

            def relay(_ev, payload=payload, cb=cb,
                      accepted=accepted, delivered=delivered):
                fused = self._post_into(src, dst, hops, ring, payload, cb,
                                        accepted, delivered)
                if client is not None:
                    if fused:
                        client.flits_fast += 1
                    else:
                        client.flits_slow += 1

            # ride the previous flit's acceptance: the relay runs at the
            # exact instant (and within-cycle position) the unfused caller
            # would resume and post this flit
            out[i - 1][0].add_callback(relay)
        return out

    # -- internal posting paths ------------------------------------------
    def _post_fast(self, route, src, dst, ring, payload, on_delivery,
                   accepted, delivered):
        """Compiled transit: closed-form acceptance at ``now + hop_latency``
        and delivery at ``now + hops * hop_latency``, carried by a pooled
        :class:`_FastFlit` record (no process, no generator)."""
        pool = self._flit_pool
        rec = pool.pop() if pool else _FastFlit(self)
        self.flits_fast[ring] += 1
        rec.launch(ring, route, src, dst, payload, on_delivery,
                   accepted, delivered)

    def _post_slow(self, route, src, dst, ring, payload, on_delivery,
                   accepted, delivered, extra_delay, dropped):
        """Per-hop generator transit: handles congestion, delays and drops."""
        self.flits_slow[ring] += 1

        def flit():
            first = True
            for link in route:
                yield from link.traverse(self.hop_latency)
                if first:
                    if accepted is not None:
                        accepted.succeed()
                    first = False
            if extra_delay:
                yield self.sim.timeout(extra_delay)
            if dropped:
                # the flit is lost in transit; the producer's posted
                # write already completed, so only delivery-side effects
                # vanish (`delivered` stays pending forever — see the
                # warning in :meth:`post`)
                self.flits_dropped[ring] += 1
                return
            if self.tracer:
                self.tracer.log(self.sim.now, f"ring.{ring}", "deliver",
                                src=src, dst=dst)
            if on_delivery is not None:
                on_delivery(payload)
            if delivered is not None:
                delivered.succeed(payload)

        self.sim.process(flit(), name=f"flit:{ring}:{src}->{dst}")

    # -- observability ----------------------------------------------------
    def fastpath_stats(self) -> dict[str, dict[str, Any]]:
        """Per-ring fused/slow flit counts and take rates."""
        out = {}
        for ring in (self.DATA, self.CREDIT):
            fast = self.flits_fast[ring]
            slow = self.flits_slow[ring]
            total = fast + slow
            out[ring] = {
                "fast": fast,
                "slow": slow,
                "demoted": self.flits_demoted[ring],
                "take_rate": (fast / total) if total else 0.0,
            }
        return out
