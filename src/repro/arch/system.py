"""MPSoC builder: tiles + dual ring + gateways in one object (Fig. 1).

:class:`MPSoC` owns the simulator, the dual-ring interconnect and the
configuration bus, hands out ring stations, and wires the four tile types
together.  The :meth:`shared_chain` helper builds the paper's entire
gateway construct — entry-gateway tile, accelerator tiles, exit-gateway
tile, NI channels with ``α = 2`` capacity — in one call, mirroring how the
"support library abstracts the implementation details and allows a
programmer to simply connect blocks of functionality" (Section IV-B).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Sequence

from ..accel.base import StreamKernel
from ..sim import Signal, SimulationError, Simulator, Tracer
from .accelerator_tile import AcceleratorTile
from .cfifo import CFifo
from .config_bus import ConfigBus
from .gateway import EntryGateway, ExitGateway, StreamBinding
from .ni import HardwareFifoChannel
from .processor import ProcessorTile
from .ring import DualRing

__all__ = ["MPSoC", "SharedChain"]


class SharedChain:
    """A built entry-gateway + accelerators + exit-gateway construct."""

    def __init__(
        self,
        entry: EntryGateway,
        exit_gw: ExitGateway,
        tiles: list[AcceleratorTile],
        bindings: list[StreamBinding],
        channels: list[HardwareFifoChannel] | None = None,
    ) -> None:
        self.entry = entry
        self.exit = exit_gw
        self.tiles = tiles
        self.bindings = {b.name: b for b in bindings}
        self.channels = channels or []
        #: (failed tile, spare tile) name pairs, in remap order
        self.remaps: list[tuple[str, str]] = []

    def binding(self, name: str) -> StreamBinding:
        return self.bindings[name]

    def remap_tile(self, failed: AcceleratorTile, spare: AcceleratorTile) -> None:
        """Substitute a dormant spare into a dead tile's chain position.

        The kernel object (and any shadow contexts) survive the hardware
        failure — only the tile died — so the spare adopts them together
        with the dead tile's channel endpoints.  The ``tiles`` list is
        shared by reference with the entry-gateway, so the in-place swap
        is immediately visible to the admission/flush logic.  Only legal
        while the chain is quiescent; the caller (the reconfiguration
        manager) guarantees that.
        """
        if not failed.dead:
            raise SimulationError(
                f"{failed.name}: refusing to remap a live tile"
            )
        idx = self.tiles.index(failed)
        spare.fault_injector = failed.fault_injector
        spare.on_permanent_failure = failed.on_permanent_failure
        spare.adopt(
            failed.kernel,
            self.channels[idx],
            self.channels[idx + 1],
            shadow_bank=failed._shadow_bank,
        )
        self.tiles[idx] = spare
        self.remaps.append((failed.name, spare.name))
        if self.entry.tracer:
            self.entry.tracer.log(self.entry.sim.now, failed.name,
                                  "tile_remapped", spare=spare.name,
                                  position=idx)

    def stream_metrics(self, tracer: Tracer | None = None) -> dict:
        """Per-stream :class:`~repro.sim.metrics.StreamMetrics`.

        Pass the owning :class:`MPSoC`'s tracer to additionally derive
        trace-based quantities (observed sample latency).
        """
        from ..sim.metrics import stream_metrics

        return {name: stream_metrics(b, tracer) for name, b in self.bindings.items()}

    def utilization_breakdown(self, horizon: int):
        """Entry-gateway :class:`~repro.sim.metrics.GatewayUtilization`."""
        from ..sim.metrics import gateway_utilization

        return gateway_utilization(self.entry, horizon)

    def utilization(self, horizon: int) -> dict[str, float]:
        """Measured gateway utilization over ``horizon`` cycles.

        The measured counterpart of
        :func:`repro.core.utilization.analyze_utilization`: fractions of
        time the entry-gateway spent copying samples, reconfiguring the
        accelerators, and polling for an admissible stream.
        """
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        copy = self.entry.copy_cycles / horizon
        reconf = self.entry.reconfig_cycles / horizon
        wait = self.entry.wait_cycles / horizon
        samples = sum(b.samples_in for b in self.bindings.values())
        return {
            "copy": copy,
            "reconfig": reconf,
            "wait": wait,
            "data_transfer": samples / horizon,  # 1 cycle/sample of movement
            "samples": samples,
            "blocks": self.entry.blocks_admitted,
        }


class MPSoC:
    """Top-level container for one simulated multiprocessor system."""

    def __init__(
        self,
        n_stations: int,
        hop_latency: int = 1,
        config_bus_word_time: int = 1,
        trace: bool = False,
        trace_kinds: "set[str] | frozenset[str] | None" = None,
        trace_mode: str = "full",
        trace_capacity: int | None = None,
    ) -> None:
        self.sim = Simulator()
        self.tracer = Tracer(enabled=trace, kinds=trace_kinds, mode=trace_mode,
                             capacity=trace_capacity)
        self.ring = DualRing(self.sim, n_stations, hop_latency=hop_latency,
                             tracer=self.tracer if trace else None)
        self.config_bus = ConfigBus(self.sim, word_time=config_bus_word_time,
                                    tracer=self.tracer if trace else None)
        self._next_station = 0
        self.processors: list[ProcessorTile] = []
        #: dormant cold-spare accelerator tiles (failover pool)
        self.spare_tiles: list[AcceleratorTile] = []

    # -- stations -----------------------------------------------------------
    def claim_station(self) -> int:
        """Allocate the next free ring station index."""
        if self._next_station >= self.ring.n:
            raise SimulationError(
                f"ring has only {self.ring.n} stations; build a bigger MPSoC"
            )
        idx = self._next_station
        self._next_station += 1
        return idx

    # -- tiles ------------------------------------------------------------
    def add_processor(self, name: str, quantum: int = 64) -> ProcessorTile:
        tile = ProcessorTile(
            self.sim, name, self.claim_station(), self.ring,
            quantum=quantum, tracer=self.tracer if self.tracer.enabled else None,
        )
        self.processors.append(tile)
        return tile

    def add_spare_tile(self, name: str) -> AcceleratorTile:
        """Provision a dormant cold-spare accelerator tile.

        Spares sit powered-down off the chain (no kernel, no channels, no
        process) until :meth:`take_spare` hands one to the reconfiguration
        manager for a failover remap.
        """
        tile = AcceleratorTile(
            self.sim, name,
            tracer=self.tracer if self.tracer.enabled else None,
        )
        self.spare_tiles.append(tile)
        return tile

    def take_spare(self) -> AcceleratorTile | None:
        """Hand out the next dormant spare, or None when the pool is dry."""
        for tile in self.spare_tiles:
            if tile.dormant:
                return tile
        return None

    def software_fifo(self, src: ProcessorTile | int, dst: ProcessorTile | int,
                      capacity: int, name: str) -> CFifo:
        s = src.station if isinstance(src, ProcessorTile) else int(src)
        d = dst.station if isinstance(dst, ProcessorTile) else int(dst)
        return CFifo(self.sim, self.ring, s, d, capacity, name=name,
                     tracer=self.tracer if self.tracer.enabled else None)

    # -- the paper's construct ------------------------------------------------
    def shared_chain(
        self,
        name: str,
        kernels: Sequence[StreamKernel],
        stream_configs: Sequence[dict[str, Any]],
        entry_copy: int = 15,
        exit_copy: int = 1,
        ni_capacity: int = 2,
        poll_interval: int = 1,
        context_mode: str = "software",
        shadow_switch_cycles: int = 4,
        watchdog: Any = None,
        admission: Any = None,
        fault_injector: Any = None,
    ) -> SharedChain:
        """Build a gateway pair sharing a chain of accelerator kernels.

        Each entry of ``stream_configs`` describes one multiplexed stream::

            {
                "name": str,
                "eta": int,                  # block size (input samples)
                "in_fifo": CFifo,            # producer -> entry gateway
                "out_fifo": CFifo,           # exit gateway -> consumer
                "states": [dict, ...],      # per-kernel initial contexts
                "reconfigure_cycles": int | None,   # explicit R_s
            }

        The chain's aggregate output ratio (e.g. 1/8 for one decimator)
        is computed from the kernels.

        ``watchdog`` (a :class:`~repro.sim.faults.WatchdogConfig`) arms the
        entry gateway's recovery path; ``admission`` (an
        :class:`~repro.sim.faults.AdmissionController`) enables graceful
        degradation; ``fault_injector`` (a
        :class:`~repro.sim.faults.FaultInjector`) is wired into the ring,
        the tiles and every stream C-FIFO.  All three default to ``None``,
        leaving the fault-free construct cycle-for-cycle unchanged.
        """
        tracer = self.tracer if self.tracer.enabled else None
        kernels = list(kernels)
        if not kernels:
            raise SimulationError("shared_chain needs at least one kernel")

        entry_station = self.claim_station()
        acc_stations = [self.claim_station() for _ in kernels]
        exit_station = self.claim_station()

        # NI channels: entry -> acc0 -> ... -> accN-1 -> exit
        stations = [entry_station, *acc_stations, exit_station]
        channels = [
            HardwareFifoChannel(
                self.sim, self.ring, a, b, capacity=ni_capacity,
                name=f"{name}.ni{i}", tracer=tracer,
            )
            for i, (a, b) in enumerate(zip(stations, stations[1:]))
        ]
        tiles = [
            AcceleratorTile(self.sim, f"{name}.acc{i}", k, channels[i], channels[i + 1],
                            tracer=tracer)
            for i, k in enumerate(kernels)
        ]

        ratio = Fraction(1)
        for k in kernels:
            ratio *= k.output_ratio

        bindings = []
        for cfg in stream_configs:
            bindings.append(
                StreamBinding(
                    name=cfg["name"],
                    eta=int(cfg["eta"]),
                    in_fifo=cfg["in_fifo"],
                    out_fifo=cfg["out_fifo"],
                    states=list(cfg["states"]),
                    output_ratio=ratio,
                    reconfigure_cycles=cfg.get("reconfigure_cycles"),
                )
            )

        if fault_injector is not None:
            self.ring.fault_injector = fault_injector
            for tile in tiles:
                tile.fault_injector = fault_injector
            for binding in bindings:
                binding.in_fifo.fault_injector = fault_injector
                binding.out_fifo.fault_injector = fault_injector

        idle = Signal(self.sim, initial=1, name=f"{name}.idle")
        exit_gw = ExitGateway(self.sim, f"{name}.exit", channels[-1], idle,
                              exit_copy=exit_copy, tracer=tracer)
        entry = EntryGateway(
            self.sim, f"{name}.entry", tiles, channels[0], exit_gw, bindings,
            self.config_bus, entry_copy=entry_copy, poll_interval=poll_interval,
            context_mode=context_mode, shadow_switch_cycles=shadow_switch_cycles,
            tracer=tracer, watchdog=watchdog, admission=admission,
            fault_injector=fault_injector, channels=channels,
        )
        return SharedChain(entry, exit_gw, tiles, bindings, channels)

    # -- execution ------------------------------------------------------------
    def run(self, until: int) -> None:
        """Advance the whole system to the given cycle."""
        self.sim.run(until=until)
