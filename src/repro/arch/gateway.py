"""Entry- and exit-gateways — the paper's mechanism (Sections III, IV-C).

The **entry-gateway** multiplexes blocks of data from several streams over a
chain of shared accelerator tiles under round-robin.  A block of stream
``s`` is admitted only when *all three* of the paper's conditions hold:

1. the pipeline is idle — the exit-gateway has signalled that every sample
   of the previous block left the chain (otherwise a context switch would
   corrupt in-flight data),
2. a full block of ``η_s`` input samples is available in the stream's input
   C-FIFO,
3. the consumer buffer has room for the whole block's output — the
   *check-for-space* that [8] lacks and without which no conservative CSDF
   model exists (Section V-G).

On admission the gateway context-switches the accelerators over the
configuration bus (``R_s`` cycles) and DMA-copies the block into the chain
at ``ε`` cycles per sample.  The **exit-gateway** converts the hardware
flow-controlled stream back to the software C-FIFO (``δ`` cycles per
sample) and raises the pipeline-idle signal after the block's last sample.

Utilisation counters mirror the paper's Section VI-A discussion: copy
cycles, reconfiguration cycles and idle time are accounted separately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any

from ..sim import FifoQueue, Signal, SimulationError, Simulator, Tracer
from ..sim.trace import Kind
from .accelerator_tile import AcceleratorTile
from .cfifo import CFifo
from .config_bus import ConfigBus
from .ni import HardwareFifoChannel

__all__ = ["StreamBinding", "EntryGateway", "ExitGateway", "GatewayError"]


class GatewayError(SimulationError):
    """Raised on malformed stream bindings or protocol violations."""


@dataclass
class StreamBinding:
    """Everything the gateway pair needs to serve one multiplexed stream."""

    name: str
    eta: int
    in_fifo: CFifo
    out_fifo: CFifo
    states: list[dict[str, Any]]
    output_ratio: Fraction = Fraction(1)
    reconfigure_cycles: int | None = None

    blocks_done: int = 0
    samples_in: int = 0
    samples_out: int = 0
    first_output_at: int | None = None
    last_output_at: int | None = None
    admissions: list[int] = field(default_factory=list)
    completions: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.eta < 1:
            raise GatewayError(f"stream {self.name!r}: block size must be >= 1")
        out = self.eta * self.output_ratio
        if out.denominator != 1 or out == 0:
            raise GatewayError(
                f"stream {self.name!r}: η={self.eta} with output ratio "
                f"{self.output_ratio} does not yield a whole output block"
            )

    @property
    def expected_out(self) -> int:
        """Output samples produced by one block of ``eta`` inputs."""
        return int(self.eta * self.output_ratio)


class ExitGateway:
    """Hardware→software flow-control converter + pipeline-idle detector."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        input_channel: HardwareFifoChannel,
        idle: Signal,
        exit_copy: int = 1,
        tracer: Tracer | None = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.input = input_channel
        self.idle = idle
        self.exit_copy = int(exit_copy)
        self.tracer = tracer
        self._blocks = FifoQueue(sim, capacity=4, name=f"{name}.blocks")
        self.samples_forwarded = 0
        sim.process(self._run(), name=f"exitgw:{name}")

    def begin_block(self, binding: StreamBinding) -> None:
        """Called by the entry-gateway right before it streams a block."""
        if not self._blocks.try_put(binding):
            raise GatewayError(f"{self.name}: too many blocks in flight")

    def _run(self):
        while True:
            binding: StreamBinding = yield self._blocks.get()
            for _ in range(binding.expected_out):
                word = yield from self.input.recv()
                if self.exit_copy:
                    yield self.sim.timeout(self.exit_copy)
                yield from binding.out_fifo.put(word)
                self.samples_forwarded += 1
                binding.samples_out += 1
                if binding.first_output_at is None:
                    binding.first_output_at = self.sim.now
                binding.last_output_at = self.sim.now
            binding.blocks_done += 1
            binding.completions.append(self.sim.now)
            if self.tracer:
                admitted = binding.admissions[binding.blocks_done - 1]
                self.tracer.log(self.sim.now, self.name, Kind.BLOCK_DONE,
                                stream=binding.name,
                                block=binding.blocks_done - 1,
                                admitted_at=admitted,
                                block_time=self.sim.now - admitted,
                                samples=binding.expected_out)
            # the pipeline is empty: allow the next block in
            self.idle.release(1)


class EntryGateway:
    """Round-robin block scheduler + DMA + context-switch driver."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        tiles: list[AcceleratorTile],
        chain_input: HardwareFifoChannel,
        exit_gateway: ExitGateway,
        bindings: list[StreamBinding],
        config_bus: ConfigBus,
        entry_copy: int = 15,
        poll_interval: int = 1,
        context_mode: str = "software",
        shadow_switch_cycles: int = 4,
        tracer: Tracer | None = None,
    ) -> None:
        if not bindings:
            raise GatewayError("entry gateway needs at least one stream binding")
        if context_mode not in ("software", "shadow"):
            raise GatewayError(
                f"context_mode must be 'software' or 'shadow', got {context_mode!r}"
            )
        if shadow_switch_cycles < 1:
            raise GatewayError("shadow switch must take at least one cycle")
        for b in bindings:
            if len(b.states) != len(tiles):
                raise GatewayError(
                    f"stream {b.name!r}: {len(b.states)} contexts for {len(tiles)} tiles"
                )
        self.sim = sim
        self.name = name
        self.tiles = tiles
        self.chain_input = chain_input
        self.exit_gateway = exit_gateway
        self.bindings = list(bindings)
        self.config_bus = config_bus
        self.entry_copy = int(entry_copy)
        self.poll_interval = max(1, int(poll_interval))
        self.context_mode = context_mode
        self.shadow_switch_cycles = int(shadow_switch_cycles)
        self.tracer = tracer
        self.idle = exit_gateway.idle
        if context_mode == "shadow":
            # preload every stream's context into every tile's shadow bank
            for binding in bindings:
                for i, tile in enumerate(tiles):
                    tile.install_shadow(binding.name, binding.states[i])

        self._current: StreamBinding | None = None
        self.copy_cycles = 0
        self.reconfig_cycles = 0
        self.wait_cycles = 0
        self.blocks_admitted = 0
        sim.process(self._run(), name=f"entrygw:{name}")

    # -- admission test -----------------------------------------------------
    def _ready(self, binding: StreamBinding) -> bool:
        """The paper's three admission conditions, all non-blocking."""
        return (
            self.idle.count >= 1
            and binding.in_fifo.consumer_available >= binding.eta
            and binding.out_fifo.producer_space >= binding.expected_out
        )

    # -- context switch -----------------------------------------------------
    def _reconfigure(self, binding: StreamBinding):
        """Save the outgoing context, restore the incoming one (bus-timed).

        In ``software`` mode the switch pays the word-by-word bus transfer
        (or the binding's explicit ``R_s``); in ``shadow`` mode (the
        paper's future-work extension) it is a constant-time bank swap.
        """
        start = self.sim.now
        if self._current is not binding:
            if self.context_mode == "shadow":
                outgoing = self._current.name if self._current else None
                for tile in self.tiles:
                    tile.activate_shadow(outgoing, binding.name)
                yield from self.config_bus.transfer_cycles(
                    self.shadow_switch_cycles, label=f"shadow:{binding.name}"
                )
            else:
                if self._current is not None:
                    for i, tile in enumerate(self.tiles):
                        self._current.states[i] = tile.save_state()
                save_words = (
                    sum(t.state_words for t in self.tiles) if self._current else 0
                )
                for i, tile in enumerate(self.tiles):
                    tile.load_state(binding.states[i])
                load_words = sum(t.state_words for t in self.tiles)
                if binding.reconfigure_cycles is not None:
                    yield from self.config_bus.transfer_cycles(
                        binding.reconfigure_cycles, label=f"R:{binding.name}"
                    )
                else:
                    yield from self.config_bus.transfer(
                        save_words + load_words, label=f"ctx:{binding.name}"
                    )
            self._current = binding
        self.reconfig_cycles += self.sim.now - start
        if self.tracer:
            self.tracer.log(self.sim.now, self.name, Kind.RECONFIGURE,
                            stream=binding.name, cycles=self.sim.now - start)

    # -- main loop ------------------------------------------------------------
    def _run(self):
        rr = 0
        while True:
            # one full rotation looking for an admissible stream
            admitted = False
            for offset in range(len(self.bindings)):
                binding = self.bindings[(rr + offset) % len(self.bindings)]
                if not self._ready(binding):
                    continue
                rr = (rr + offset + 1) % len(self.bindings)
                yield from self._process_block(binding)
                admitted = True
                break
            if not admitted:
                self.wait_cycles += self.poll_interval
                yield self.sim.timeout(self.poll_interval)

    def _process_block(self, binding: StreamBinding):
        yield self.idle.acquire(1)
        self.blocks_admitted += 1
        binding.admissions.append(self.sim.now)
        if self.tracer:
            self.tracer.log(self.sim.now, self.name, Kind.ADMIT,
                            stream=binding.name, eta=binding.eta,
                            block=len(binding.admissions) - 1)
        yield from self._reconfigure(binding)
        self.exit_gateway.begin_block(binding)
        copy_start = self.sim.now
        for _ in range(binding.eta):
            word = yield from binding.in_fifo.get()
            if self.entry_copy:
                yield self.sim.timeout(self.entry_copy)
            yield from self.chain_input.send(word)
            binding.samples_in += 1
        self.copy_cycles += self.sim.now - copy_start
        if self.tracer:
            self.tracer.log(self.sim.now, self.name, Kind.COPY,
                            stream=binding.name, samples=binding.eta,
                            cycles=self.sim.now - copy_start)
        # NOTE: the idle token is released by the exit gateway once the
        # block's last output sample has left the pipeline.
