"""Entry- and exit-gateways — the paper's mechanism (Sections III, IV-C).

The **entry-gateway** multiplexes blocks of data from several streams over a
chain of shared accelerator tiles under round-robin.  A block of stream
``s`` is admitted only when *all three* of the paper's conditions hold:

1. the pipeline is idle — the exit-gateway has signalled that every sample
   of the previous block left the chain (otherwise a context switch would
   corrupt in-flight data),
2. a full block of ``η_s`` input samples is available in the stream's input
   C-FIFO,
3. the consumer buffer has room for the whole block's output — the
   *check-for-space* that [8] lacks and without which no conservative CSDF
   model exists (Section V-G).

On admission the gateway context-switches the accelerators over the
configuration bus (``R_s`` cycles) and DMA-copies the block into the chain
at ``ε`` cycles per sample.  The **exit-gateway** converts the hardware
flow-controlled stream back to the software C-FIFO (``δ`` cycles per
sample) and raises the pipeline-idle signal after the block's last sample.

Utilisation counters mirror the paper's Section VI-A discussion: copy
cycles, reconfiguration cycles and idle time are accounted separately.

**Fault recovery** (optional): when the entry gateway is given a
:class:`~repro.sim.faults.WatchdogConfig`, every admitted block is guarded
by a watchdog timer set to the stream's γ_s turnaround bound plus slack.
On expiry the gateway aborts the block, flushes the chain to quiescence
(repairing credits and C-FIFO pointers lost to injected faults), rolls the
accelerator contexts back to their block-start state, and retransmits the
block with bounded exponential backoff — skipping output samples the exit
gateway already delivered, so the consumer sees each sample exactly once.
An optional :class:`~repro.sim.faults.AdmissionController` pauses
low-priority streams while recovery overhead breaks the Eq. 5 throughput
check and re-admits them after a healthy window.  Without a watchdog the
gateways behave cycle-for-cycle as the fault-free protocol.

**Lost flits and the watchdog budget.** A flit the fault injector drops
vanishes silently at ring level: its links are released, the drop is
counted (`DualRing.flits_dropped`), but its ``delivered`` event stays
pending *forever* — the ring offers no NACK, on either the compiled fast
path or the generator path (`tests/unit/test_ring_fastpath.py` pins the
two paths to identical drop accounting).  The watchdog timeout is
therefore the *only* bound on waiting for a lost flit: any protocol step
that parks on ring delivery must run under a guarded block whose γ_s
budget covers the full turnaround, which is exactly how the recovery
path above is structured.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any

from ..sim import FifoQueue, Interrupt, Signal, SimulationError, Simulator, Tracer
from ..sim.trace import Kind
from .accelerator_tile import AcceleratorTile
from .cfifo import CFifo
from .config_bus import ConfigBus
from .ni import HardwareFifoChannel

__all__ = ["StreamBinding", "EntryGateway", "ExitGateway", "GatewayError"]

#: bound on back-to-back reconfiguration repeats under injected failures
_RECONFIG_RETRY_CAP = 16


class GatewayError(SimulationError):
    """Raised on malformed stream bindings or protocol violations."""


@dataclass
class StreamBinding:
    """Everything the gateway pair needs to serve one multiplexed stream."""

    name: str
    eta: int
    in_fifo: CFifo
    out_fifo: CFifo
    states: list[dict[str, Any]]
    output_ratio: Fraction = Fraction(1)
    reconfigure_cycles: int | None = None

    blocks_done: int = 0
    samples_in: int = 0
    samples_out: int = 0
    first_output_at: int | None = None
    last_output_at: int | None = None
    admissions: list[int] = field(default_factory=list)
    completions: list[int] = field(default_factory=list)

    # -- recovery bookkeeping (all zero on a fault-free run) ---------------
    retries: int = 0
    watchdog_timeouts: int = 0
    recovery_cycles: int = 0
    recovery_latencies: list[int] = field(default_factory=list)
    degraded_cycles: int = 0
    paused_at: int | None = None
    failed: bool = False

    def __post_init__(self) -> None:
        if self.eta < 1:
            raise GatewayError(f"stream {self.name!r}: block size must be >= 1")
        out = self.eta * self.output_ratio
        if out.denominator != 1 or out == 0:
            raise GatewayError(
                f"stream {self.name!r}: η={self.eta} with output ratio "
                f"{self.output_ratio} does not yield a whole output block"
            )

    @property
    def expected_out(self) -> int:
        """Output samples produced by one block of ``eta`` inputs."""
        return int(self.eta * self.output_ratio)


class ExitGateway:
    """Hardware→software flow-control converter + pipeline-idle detector."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        input_channel: HardwareFifoChannel,
        idle: Signal,
        exit_copy: int = 1,
        tracer: Tracer | None = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.input = input_channel
        self.idle = idle
        self.exit_copy = int(exit_copy)
        self.tracer = tracer
        self._blocks = FifoQueue(sim, capacity=4, name=f"{name}.blocks")
        self.samples_forwarded = 0
        #: stale words consumed during watchdog flushes + retransmit dedup
        self.discarded = 0
        self._active: StreamBinding | None = None
        self._skip = 0
        self._delivered = 0
        self._abort_requested = False
        self._draining = False
        self._in_recv = False
        self._proc = sim.process(self._run(), name=f"exitgw:{name}")

    def begin_block(self, binding: StreamBinding, skip: int = 0) -> None:
        """Called by the entry-gateway right before it streams a block.

        ``skip`` output samples (already delivered by an aborted earlier
        attempt of the same block) are consumed and discarded instead of
        being forwarded, giving exactly-once delivery under retransmission.
        """
        if not self._blocks.try_put((binding, int(skip))):
            raise GatewayError(f"{self.name}: too many blocks in flight")

    # -- recovery interface (driven by the entry gateway's watchdog) -------
    def abort_current(self) -> None:
        """Abort the in-flight block and discard chain output until told to
        stop.  The in-flight output sample, if any, still completes — a word
        is either fully delivered or not delivered at all."""
        self._abort_requested = True
        self._draining = True
        while True:
            ok, _stale = self._blocks.try_get()
            if not ok:
                break
        if self._in_recv:
            self._proc.interrupt("watchdog-flush")

    def aborted_delivery(self) -> int:
        """Output samples of the aborted block delivered across all attempts.

        Only meaningful between :meth:`abort_current` and the next
        :meth:`begin_block`, once the chain has quiesced.
        """
        return self._skip + self._delivered

    def stop_drain(self) -> None:
        """End discard mode; the gateway re-arms for the next block."""
        self._draining = False
        self._abort_requested = False

    def _run(self):
        while True:
            try:
                binding, skip = yield self._blocks.get()
                self._active = binding
                self._skip, self._delivered = skip, 0
                aborted = False
                for i in range(binding.expected_out):
                    self._in_recv = True
                    word = yield from self.input.recv()
                    self._in_recv = False
                    if self._abort_requested:
                        self.discarded += 1
                        aborted = True
                        break
                    if i < skip:
                        # delivered by a previous attempt of this block
                        self.discarded += 1
                        continue
                    if self.exit_copy:
                        yield self.sim.timeout(self.exit_copy)
                    yield from binding.out_fifo.put(word)
                    self.samples_forwarded += 1
                    binding.samples_out += 1
                    if binding.first_output_at is None:
                        binding.first_output_at = self.sim.now
                    binding.last_output_at = self.sim.now
                    self._delivered += 1
                    if self._abort_requested:
                        aborted = True
                        break
                self._active = None
                if aborted:
                    yield from self._drain_loop()
                    continue
                binding.blocks_done += 1
                binding.completions.append(self.sim.now)
                if self.tracer:
                    admitted = binding.admissions[binding.blocks_done - 1]
                    self.tracer.log(self.sim.now, self.name, Kind.BLOCK_DONE,
                                    stream=binding.name,
                                    block=binding.blocks_done - 1,
                                    admitted_at=admitted,
                                    block_time=self.sim.now - admitted,
                                    samples=binding.expected_out)
                # the pipeline is empty: allow the next block in
                self.idle.release(1)
            except Interrupt:
                self._in_recv = False
                self._active = None
                yield from self._drain_loop()

    def _drain_loop(self):
        """Consume and discard chain output (returning credits) while the
        entry gateway flushes the pipeline."""
        while self._draining:
            while True:
                ok, _word = self.input.try_recv()
                if not ok:
                    break
                self.discarded += 1
            yield self.sim.timeout(1)


class EntryGateway:
    """Round-robin block scheduler + DMA + context-switch driver."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        tiles: list[AcceleratorTile],
        chain_input: HardwareFifoChannel,
        exit_gateway: ExitGateway,
        bindings: list[StreamBinding],
        config_bus: ConfigBus,
        entry_copy: int = 15,
        poll_interval: int = 1,
        context_mode: str = "software",
        shadow_switch_cycles: int = 4,
        tracer: Tracer | None = None,
        watchdog: Any = None,
        admission: Any = None,
        fault_injector: Any = None,
        channels: list[HardwareFifoChannel] | None = None,
    ) -> None:
        if not bindings:
            raise GatewayError("entry gateway needs at least one stream binding")
        if context_mode not in ("software", "shadow"):
            raise GatewayError(
                f"context_mode must be 'software' or 'shadow', got {context_mode!r}"
            )
        if shadow_switch_cycles < 1:
            raise GatewayError("shadow switch must take at least one cycle")
        for b in bindings:
            if len(b.states) != len(tiles):
                raise GatewayError(
                    f"stream {b.name!r}: {len(b.states)} contexts for {len(tiles)} tiles"
                )
        self.sim = sim
        self.name = name
        self.tiles = tiles
        self.chain_input = chain_input
        self.exit_gateway = exit_gateway
        self.bindings = list(bindings)
        self.config_bus = config_bus
        self.entry_copy = int(entry_copy)
        self.poll_interval = max(1, int(poll_interval))
        self.context_mode = context_mode
        self.shadow_switch_cycles = int(shadow_switch_cycles)
        self.tracer = tracer
        self.idle = exit_gateway.idle
        #: :class:`~repro.sim.faults.WatchdogConfig` or None (fault-free path)
        self.watchdog = watchdog
        #: :class:`~repro.sim.faults.AdmissionController` or None
        self.admission = admission
        #: :class:`~repro.sim.faults.FaultInjector` or None
        self.fault_injector = fault_injector
        self._channels = (
            list(channels)
            if channels is not None
            else [chain_input, *(t.output for t in tiles)]
        )
        #: chronological fault/timeout/retry/degrade events (dicts)
        self.recovery_log: list[dict[str, Any]] = []
        self._by_name = {b.name: b for b in self.bindings}
        self._last_progress = 0
        #: set when a flush gave up with the chain still holding state; no
        #: stream is admissible until the chain drains and the books settle
        self._dirty = False
        #: :class:`~repro.arch.reconfig.ReconfigurationManager` or None;
        #: when set, the recovery path executes pending tile remaps while
        #: the chain is quiesced (mid-block permanent-failure failover)
        self.reconfig = None
        #: admission freeze flag for hitless mode transitions: the
        #: reconfiguration manager freezes admission, waits for the
        #: in-flight block to drain, mutates the stream set, then thaws
        self._frozen = False
        if context_mode == "shadow":
            # preload every stream's context into every tile's shadow bank
            for binding in bindings:
                for i, tile in enumerate(tiles):
                    tile.install_shadow(binding.name, binding.states[i])

        self._current: StreamBinding | None = None
        self.copy_cycles = 0
        self.reconfig_cycles = 0
        self.wait_cycles = 0
        self.blocks_admitted = 0
        sim.process(self._run(), name=f"entrygw:{name}")

    # -- admission test -----------------------------------------------------
    def _ready(self, binding: StreamBinding) -> bool:
        """The paper's three admission conditions, all non-blocking.

        Failed, degradation-paused or transition-frozen streams are never
        admissible.
        """
        if self._frozen or self._dirty or binding.failed or binding.paused_at is not None:
            return False
        return (
            self.idle.count >= 1
            and binding.in_fifo.consumer_available >= binding.eta
            and binding.out_fifo.producer_space >= binding.expected_out
        )

    # -- online reconfiguration (driven by the ReconfigurationManager) ------
    def freeze(self) -> None:
        """Stop admitting blocks; the in-flight block (if any) completes."""
        self._frozen = True

    def thaw(self) -> None:
        """Resume admission after a mode transition."""
        self._frozen = False

    @property
    def quiescent(self) -> bool:
        """No block is in flight (the idle token is parked) and the chain
        holds no residue — the only state in which the stream set or the
        tile mapping may be mutated."""
        return self.idle.count >= 1 and self._chain_quiet()

    def add_binding(self, binding: StreamBinding) -> None:
        """Attach a new stream mid-run.  Only legal while frozen+quiescent."""
        if binding.name in self._by_name:
            raise GatewayError(f"stream {binding.name!r} is already bound")
        if len(binding.states) != len(self.tiles):
            raise GatewayError(
                f"stream {binding.name!r}: {len(binding.states)} contexts "
                f"for {len(self.tiles)} tiles"
            )
        self.bindings.append(binding)
        self._by_name[binding.name] = binding
        if self.context_mode == "shadow":
            for i, tile in enumerate(self.tiles):
                tile.install_shadow(binding.name, binding.states[i])

    def remove_binding(self, name: str) -> StreamBinding:
        """Detach a stream mid-run.  Only legal while frozen+quiescent."""
        binding = self._by_name.pop(name, None)
        if binding is None:
            raise GatewayError(f"no stream {name!r} bound to this gateway")
        self.bindings.remove(binding)
        if self._current is binding:
            # its contexts leave with it; force a clean load for whoever
            # is admitted next
            self._current = None
        return binding

    # -- context switch -----------------------------------------------------
    def _reconfigure(self, binding: StreamBinding):
        """Save the outgoing context, restore the incoming one (bus-timed).

        In ``software`` mode the switch pays the word-by-word bus transfer
        (or the binding's explicit ``R_s``); in ``shadow`` mode (the
        paper's future-work extension) it is a constant-time bank swap.
        An injected reconfiguration failure repeats the bus transfer.
        """
        start = self.sim.now
        if self._current is not binding:
            if self.context_mode == "shadow":
                outgoing = self._current.name if self._current else None
                for tile in self.tiles:
                    tile.activate_shadow(outgoing, binding.name)
                attempts = 0
                while True:
                    yield from self.config_bus.transfer_cycles(
                        self.shadow_switch_cycles, label=f"shadow:{binding.name}"
                    )
                    attempts += 1
                    if (
                        self.fault_injector is not None
                        and attempts < _RECONFIG_RETRY_CAP
                        and self.fault_injector.reconfig_fails(binding.name)
                    ):
                        continue
                    break
            else:
                if self._current is not None:
                    for i, tile in enumerate(self.tiles):
                        self._current.states[i] = tile.save_state()
                save_words = (
                    sum(t.state_words for t in self.tiles) if self._current else 0
                )
                attempts = 0
                while True:
                    for i, tile in enumerate(self.tiles):
                        tile.load_state(binding.states[i])
                    load_words = sum(t.state_words for t in self.tiles)
                    if binding.reconfigure_cycles is not None:
                        if binding.reconfigure_cycles > 0:
                            yield from self.config_bus.transfer_cycles(
                                binding.reconfigure_cycles, label=f"R:{binding.name}"
                            )
                    elif save_words + load_words > 0:
                        yield from self.config_bus.transfer(
                            save_words + load_words, label=f"ctx:{binding.name}"
                        )
                    attempts += 1
                    if (
                        self.fault_injector is not None
                        and attempts < _RECONFIG_RETRY_CAP
                        and self.fault_injector.reconfig_fails(binding.name)
                    ):
                        continue
                    break
            self._current = binding
        self.reconfig_cycles += self.sim.now - start
        if self.tracer:
            self.tracer.log(self.sim.now, self.name, Kind.RECONFIGURE,
                            stream=binding.name, cycles=self.sim.now - start)

    # -- main loop ------------------------------------------------------------
    def _run(self):
        rr = 0
        while True:
            # one full rotation looking for an admissible stream
            admitted = False
            for offset in range(len(self.bindings)):
                binding = self.bindings[(rr + offset) % len(self.bindings)]
                if not self._ready(binding):
                    continue
                rr = (rr + offset + 1) % len(self.bindings)
                yield from self._process_block(binding)
                admitted = True
                self._last_progress = self.sim.now
                break
            if not admitted:
                self.wait_cycles += self.poll_interval
                yield self.sim.timeout(self.poll_interval)
                if self.watchdog is not None:
                    self._poll_maintenance()

    def _process_block(self, binding: StreamBinding):
        yield self.idle.acquire(1)
        self.blocks_admitted += 1
        binding.admissions.append(self.sim.now)
        if self.tracer:
            self.tracer.log(self.sim.now, self.name, Kind.ADMIT,
                            stream=binding.name, eta=binding.eta,
                            block=len(binding.admissions) - 1)
        yield from self._reconfigure(binding)
        if self.watchdog is None:
            yield from self._run_block(binding)
        else:
            yield from self._run_block_guarded(binding)

    def _run_block(self, binding: StreamBinding):
        """The fault-free streaming path (cycle-exact legacy behaviour)."""
        self.exit_gateway.begin_block(binding)
        copy_start = self.sim.now
        for _ in range(binding.eta):
            word = yield from binding.in_fifo.get()
            if self.entry_copy:
                yield self.sim.timeout(self.entry_copy)
            yield from self.chain_input.send(word)
            binding.samples_in += 1
        self.copy_cycles += self.sim.now - copy_start
        if self.tracer:
            self.tracer.log(self.sim.now, self.name, Kind.COPY,
                            stream=binding.name, samples=binding.eta,
                            cycles=self.sim.now - copy_start)
        # NOTE: the idle token is released by the exit gateway once the
        # block's last output sample has left the pipeline.

    # -- watchdog-guarded streaming (recovery path) -------------------------
    def _run_block_guarded(self, binding: StreamBinding):
        """Stream one block under a watchdog; flush + retransmit on expiry."""
        wd = self.watchdog
        budget = wd.budget_for(binding.name)
        retained: list[Any] = []    # input words fetched so far (replay source)
        delivered = 0               # output samples the consumer already has
        attempt = 0
        block_recovery = 0
        completions_before = len(binding.completions)
        while True:
            self.exit_gateway.begin_block(binding, skip=delivered)
            worker = self.sim.process(
                self._stream_and_wait(binding, retained),
                name=f"block:{binding.name}",
            )
            timer = self.sim.timeout(budget)
            idx, _value = yield self.sim.any_of([worker, timer])
            if idx == 0 or len(binding.completions) > completions_before:
                # block completed (idx == 1 means the timer tied with it)
                if not worker.processed:
                    yield worker
                if attempt:
                    self._log(Kind.RECOVERED, binding.name, retries=attempt,
                              recovery_cycles=block_recovery)
                self.idle.release(1)
                return
            # -- watchdog expired ------------------------------------------
            timeout_at = self.sim.now
            binding.watchdog_timeouts += 1
            self._log(Kind.WATCHDOG, binding.name, attempt=attempt,
                      budget=budget)
            if worker.is_alive:
                worker.interrupt("watchdog")
            self.exit_gateway.abort_current()
            flushed = yield from self._quiesce_chain()
            delivered = self.exit_gateway.aborted_delivery()
            attempt += 1
            if not flushed or attempt > wd.retry_limit:
                reason = "flush-failed" if not flushed else "retry-limit"
                if flushed:
                    self.exit_gateway.stop_drain()
                else:
                    # the chain still holds in-flight state (e.g. a tile
                    # stuck in a long stall): keep the exit draining and
                    # block all admission until the chain finally settles
                    self._dirty = True
                self._fail_stream(binding, reason, attempt)
                return
            if self.reconfig is not None and self.reconfig.pending_remaps:
                # a tile died under this block: remap the chain onto a
                # spare now, while it is provably quiet, then replay the
                # block through the repaired chain
                yield from self.reconfig.execute_remaps(trigger="watchdog")
            yield from self._rollback_contexts(binding)
            self.exit_gateway.stop_drain()
            backoff = wd.backoff(attempt)
            yield self.sim.timeout(backoff)
            recovery = self.sim.now - timeout_at
            binding.retries += 1
            binding.recovery_cycles += recovery
            binding.recovery_latencies.append(recovery)
            block_recovery += recovery
            self._log(Kind.RETRY, binding.name, attempt=attempt,
                      backoff=backoff, skip=delivered,
                      recovery_cycles=recovery)
            if self.admission is not None:
                paused = self.admission.note_recovery(
                    self.sim.now, binding.name, recovery
                )
                for name in paused:
                    self._pause_stream(name)

    def _stream_and_wait(self, binding: StreamBinding, retained: list[Any]):
        """One guarded streaming attempt: copy the block in, await idle.

        Words already fetched from the input C-FIFO in an earlier attempt
        are replayed from ``retained`` instead of being fetched again — the
        rolled-back accelerator contexts reproduce the same outputs, which
        the exit gateway dedups via its ``skip`` count.
        """
        copy_start = self.sim.now
        for i in range(binding.eta):
            if i < len(retained):
                word = retained[i]
            else:
                while True:
                    ok, word = binding.in_fifo.try_get()
                    if ok:
                        break
                    # a fault can briefly hide admitted words; poll instead of
                    # blocking so a watchdog interrupt can never tear a wait
                    yield self.sim.timeout(1)
                retained.append(word)
                binding.samples_in += 1
            if self.entry_copy:
                yield self.sim.timeout(self.entry_copy)
            yield from self.chain_input.send(word)
        self.copy_cycles += self.sim.now - copy_start
        if self.tracer:
            self.tracer.log(self.sim.now, self.name, Kind.COPY,
                            stream=binding.name, samples=binding.eta,
                            cycles=self.sim.now - copy_start)
        # reclaim the idle token the exit gateway releases on completion
        yield self.idle.acquire(1)

    # -- flush / quiescence -------------------------------------------------
    def _chain_quiet(self) -> bool:
        """No tile is firing or holding outputs, no channel holds words.

        A permanently dead tile consumes nothing and computes nothing; its
        counters are frozen at zero by ``fail_permanently`` and its input
        is drained by :meth:`_repair_losses`, so quiescence remains
        reachable around it (the spare failover needs a quiet chain).
        """
        for tile in self.tiles:
            if getattr(tile, "dead", False):
                continue
            if tile.busy or tile.pending_out or tile.input.buffered:
                return False
        for ch in self._channels:
            if ch.buffered or ch.words_in_flight:
                return False
        return True

    def _quiesce_chain(self):
        """Drive the chain to a quiet state after an abort.

        Each settle round repairs fault-induced credit/pointer losses (so
        tiles blocked on dead credits can flush) and then checks for
        quiescence; two consecutive quiet rounds with a stable discard
        count mean the pipeline is drained.  Returns True on success.
        """
        wd = self.watchdog
        quiet = 0
        for _ in range(wd.settle_rounds):
            before = self.exit_gateway.discarded
            yield self.sim.timeout(wd.settle_cycles)
            self._repair_losses()
            if self._chain_quiet() and self.exit_gateway.discarded == before:
                quiet += 1
                if quiet >= 2:
                    return True
            else:
                quiet = 0
        return False

    def _repair_losses(self) -> None:
        """Settle the books on every channel and C-FIFO after faults."""
        inj = self.fault_injector
        for tile in self.tiles:
            # a dead tile never consumes again: discard whatever reached
            # its input (returning the credits) so the chain can quiesce
            # and the block be replayed through the remapped spare
            if not getattr(tile, "dead", False):
                continue
            discarded = 0
            while True:
                ok, _word = tile.input.try_recv()
                if not ok:
                    break
                discarded += 1
            if discarded:
                self._log(Kind.RESYNC, None, tile=tile.name,
                          dead_tile_drained=discarded)
        for ch in self._channels:
            data_drops = credit_drops = 0
            if inj is not None:
                data_drops, credit_drops = inj.claim_drops(ch.src, ch.dst)
            restored = ch.repair(data_drops, credit_drops)
            if restored:
                self._log(Kind.RESYNC, None, channel=ch.name,
                          credits=restored, data_drops=data_drops,
                          credit_drops=credit_drops)
        for binding in self.bindings:
            for fifo in (binding.in_fifo, binding.out_fifo):
                resync = getattr(fifo, "resync", None)
                if resync is None:
                    continue
                space, avail = resync()
                if space or avail:
                    self._log(Kind.RESYNC, binding.name, fifo=fifo.name,
                              space=space, avail=avail)

    def _rollback_contexts(self, binding: StreamBinding):
        """Reload the block-start accelerator contexts after a flush.

        The contexts parked at the stream's last switch-out are exactly its
        block-start state (nothing ran between), so a forced reconfigure
        restores determinism for the replay.
        """
        self._current = None
        yield from self._reconfigure(binding)

    # -- degradation ---------------------------------------------------------
    def _pause_stream(self, name: str) -> None:
        binding = self._by_name.get(name)
        if binding is None or binding.paused_at is not None or binding.failed:
            return
        binding.paused_at = self.sim.now
        self._log(Kind.DEGRADE, name)

    def _resume_stream(self, name: str) -> None:
        binding = self._by_name.get(name)
        if binding is None or binding.paused_at is None:
            return
        binding.degraded_cycles += self.sim.now - binding.paused_at
        binding.paused_at = None
        self._log(Kind.READMIT, name, degraded_cycles=binding.degraded_cycles)

    def _fail_stream(self, binding: StreamBinding, reason: str,
                     retries: int) -> None:
        binding.failed = True
        self._log(Kind.STREAM_FAILED, binding.name, reason=reason,
                  retries=retries)
        if self.admission is not None:
            self.admission.mark_failed(binding.name)
        # the failed stream's contexts were never saved back; force a full
        # reload on the next switch instead of saving corrupt state over it
        self._current = None
        wd = self.watchdog
        if wd is not None and wd.on_stream_failed is not None:
            wd.on_stream_failed(binding.name)
        # hand the admission token back so other streams keep flowing
        self.idle.release(1)

    def _poll_maintenance(self) -> None:
        """Between admissions: dirty-chain settling, re-admission ticks and
        stall resyncs."""
        if self._dirty:
            self._repair_losses()
            if self._chain_quiet():
                self._dirty = False
                self.exit_gateway.stop_drain()
                self._log(Kind.RESYNC, None, chain_drained=True)
        if self.admission is not None:
            for name in self.admission.tick(self.sim.now):
                self._resume_stream(name)
        if self.sim.now - self._last_progress >= self.watchdog.stall_resync_after:
            self._repair_losses()
            self._last_progress = self.sim.now

    def _log(self, kind: str, stream: str | None, **data: Any) -> None:
        record = {"time": self.sim.now, "kind": kind, "stream": stream, **data}
        self.recovery_log.append(record)
        if self.tracer:
            self.tracer.log(self.sim.now, self.name, kind, stream=stream, **data)
