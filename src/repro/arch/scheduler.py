"""Priority-based budget scheduler (Steine/Bekooij/Wiggers [18]; Sec. IV-A).

Tasks on a processor tile are "governed by a real-time budget scheduler":
each task owns a *budget* of processor cycles that is replenished every
*period*; among tasks with remaining budget, the highest priority runs.
This bounds the interference any task suffers, which is what makes software
tasks expressible in the dataflow model.

Tasks are Python generators yielding commands:

* ``Compute(cycles)`` — consume processor time (budget-accounted,
  preemptible at slice granularity),
* ``Get(fifo)`` — blocking read from a :class:`~repro.arch.cfifo.CFifo`
  (the wait consumes neither budget nor processor),
* ``Put(fifo, value)`` — blocking write,
* ``Sleep(cycles)`` — wall-clock wait off the processor.

The model preempts at command/slice boundaries (``quantum`` cycles inside a
long ``Compute``); a fully cycle-preemptive processor would only move
preemption points earlier, so budget guarantees derived here are
conservative for the tasks of interest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator

from ..sim import SimulationError, Simulator, Tracer

__all__ = ["Compute", "Get", "Put", "Sleep", "TaskSpec", "BudgetScheduler"]


@dataclass(frozen=True)
class Compute:
    """Consume ``cycles`` of processor time under budget accounting."""

    cycles: int


@dataclass(frozen=True)
class Get:
    """Blocking read; the command's result is the word read."""

    fifo: Any


@dataclass(frozen=True)
class Put:
    """Blocking write of ``value``."""

    fifo: Any
    value: Any


@dataclass(frozen=True)
class Sleep:
    """Leave the processor for ``cycles`` (e.g. waiting for a timer)."""

    cycles: int


@dataclass(frozen=True)
class TaskSpec:
    """Static description of a scheduled task."""

    name: str
    factory: Callable[[], Generator]
    priority: int = 0          # lower value = higher priority
    budget: int = 10**9        # cycles per period
    period: int = 10**9        # replenishment period

    def __post_init__(self) -> None:
        if self.budget < 1 or self.period < 1:
            raise SimulationError(f"task {self.name!r}: budget/period must be >= 1")


class _Task:
    __slots__ = (
        "spec", "gen", "budget_left", "blocked", "finished",
        "pending_value", "compute_left", "executed_cycles", "commands_done",
    )

    def __init__(self, spec: TaskSpec):
        self.spec = spec
        self.gen = spec.factory()
        self.budget_left = spec.budget
        self.blocked = False
        self.finished = False
        self.pending_value: Any = None
        self.compute_left = 0
        self.executed_cycles = 0
        self.commands_done = 0

    @property
    def runnable(self) -> bool:
        return not self.finished and not self.blocked and (
            self.compute_left == 0 or self.budget_left > 0
        )


class BudgetScheduler:
    """One processor's scheduler; create, add tasks, then ``start()``."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "cpu",
        quantum: int = 64,
        tracer: Tracer | None = None,
    ) -> None:
        if quantum < 1:
            raise SimulationError("scheduler quantum must be >= 1 cycle")
        self.sim = sim
        self.name = name
        self.quantum = int(quantum)
        self.tracer = tracer
        self._tasks: list[_Task] = []
        self._wake = sim.event()
        self._started = False
        self.busy_cycles = 0

    # -- setup ------------------------------------------------------------
    def add_task(self, spec: TaskSpec) -> None:
        if self._started:
            raise SimulationError("cannot add tasks after start()")
        if any(t.spec.name == spec.name for t in self._tasks):
            raise SimulationError(f"duplicate task name {spec.name!r}")
        self._tasks.append(_Task(spec))

    def start(self) -> None:
        if self._started:
            raise SimulationError("scheduler already started")
        if not self._tasks:
            raise SimulationError("no tasks to schedule")
        self._started = True
        for task in self._tasks:
            if task.spec.period < 10**9:
                self.sim.process(self._replenisher(task), name=f"replenish:{task.spec.name}")
        self.sim.process(self._run(), name=f"sched:{self.name}")

    # -- introspection ------------------------------------------------------
    def task_stats(self) -> dict[str, dict[str, int]]:
        """Per-task executed cycles and completed commands."""
        return {
            t.spec.name: {
                "executed_cycles": t.executed_cycles,
                "commands_done": t.commands_done,
                "finished": int(t.finished),
            }
            for t in self._tasks
        }

    @property
    def all_finished(self) -> bool:
        return all(t.finished for t in self._tasks)

    # -- internals ------------------------------------------------------------
    def _notify(self) -> None:
        if not self._wake.triggered:
            self._wake.succeed()

    def _replenisher(self, task: _Task):
        while not task.finished:
            yield self.sim.timeout(task.spec.period)
            task.budget_left = task.spec.budget
            self._notify()

    def _pick(self) -> _Task | None:
        best: _Task | None = None
        for t in self._tasks:
            if not t.runnable:
                continue
            if t.compute_left > 0 and t.budget_left == 0:
                continue
            if best is None or t.spec.priority < best.spec.priority:
                best = t
        return best

    def _block_on(self, task: _Task, gen: Generator) -> None:
        """Run a channel operation as a side process; unblock on completion."""
        task.blocked = True
        proc = self.sim.process(gen, name=f"io:{task.spec.name}")

        def done(ev):
            task.blocked = False
            task.pending_value = ev.value
            self._notify()

        proc.add_callback(done)

    def _advance(self, task: _Task) -> None:
        """Fetch the task's next command (it just finished the previous one)."""
        try:
            cmd = task.gen.send(task.pending_value)
        except StopIteration:
            task.finished = True
            if self.tracer:
                self.tracer.log(self.sim.now, self.name, "task_done",
                                task=task.spec.name)
            return
        task.pending_value = None
        task.commands_done += 1
        if isinstance(cmd, Compute):
            if cmd.cycles < 0:
                raise SimulationError(f"{task.spec.name}: negative compute")
            task.compute_left = cmd.cycles
        elif isinstance(cmd, Get):
            self._block_on(task, cmd.fifo.get())
        elif isinstance(cmd, Put):
            self._block_on(task, cmd.fifo.put(cmd.value))
        elif isinstance(cmd, Sleep):
            task.blocked = True

            def waker(t=task):
                yield self.sim.timeout(cmd.cycles)
                t.blocked = False
                self._notify()

            self.sim.process(waker(), name=f"sleep:{task.spec.name}")
        else:
            raise SimulationError(
                f"{task.spec.name}: unknown command {type(cmd).__name__}"
            )

    def _run(self):
        while True:
            task = self._pick()
            if task is None:
                if all(t.finished for t in self._tasks):
                    return
                self._wake = self.sim.event()
                yield self._wake
                continue
            if task.compute_left > 0:
                # run one budget/quantum slice of the pending compute
                slice_ = min(task.compute_left, task.budget_left, self.quantum)
                yield self.sim.timeout(slice_)
                task.compute_left -= slice_
                task.budget_left -= slice_
                task.executed_cycles += slice_
                self.busy_cycles += slice_
                if task.compute_left == 0:
                    self._advance(task)
            else:
                self._advance(task)
