"""Online reconfiguration — stream churn and spare-tile failover.

The paper computes block sizes offline, for a fixed stream set, and keeps
them for the lifetime of the run (Algorithm 1).  Real deployments are not
that static: streams join and leave ("different numbers of streams with
different throughput requirements"), and hardware fails.  This module adds
the missing online half, in the spirit of the bounded mode-transition
protocols of Jung et al. (see PAPERS.md): a :class:`ReconfigurationManager`
that accepts join/leave requests and permanent-tile-failure notifications
mid-simulation and executes *hitless* mode transitions —

1. **freeze** — the entry-gateway stops admitting blocks (the in-flight
   block, if any, completes normally),
2. **quiesce** — wait until the pipeline-idle token is parked and the chain
   holds no residue (the only state in which the paper allows any
   reconfiguration),
3. **re-solve** — run Algorithm 1 over the new stream set with a warm start
   from the previous solution (:func:`repro.core.blocksize_ilp.resolve_block_sizes`),
4. **reprogram** — pay for the gateway rotation table and C-FIFO credit
   updates over the configuration bus (serialised, cycle-counted),
5. **thaw** — admission resumes under the new mode.

Every transition is recorded as a :class:`ModeTransition` with its measured
latency against a closed-form budget (one worst-case block round of the
*outgoing* mode plus the bus reprogramming time plus slack), so a run can
assert Jung-style bounded transition delays.  Between transitions the run
is in a steady *mode* whose Eq. 2–5 bounds are checked per
:func:`repro.core.conformance.check_modal_conformance` window.

Permanent tile failures take the same quiesce-then-mutate path but swap
hardware instead of streams: the dead tile's chain position is remapped
onto a dormant cold spare (:meth:`repro.arch.system.MPSoC.add_spare_tile`),
the kernel object and shadow contexts surviving the move.  A failure under
an in-flight block is handled by the entry-gateway's watchdog (abort,
flush, remap while provably quiet, replay); an idle-time failure is handled
by the manager directly.  With no spare left, the remap is refused and the
affected stream degrades through the existing retry/fail-stop path.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from math import ceil
from typing import Any, Callable

from ..core.blocksize_ilp import (
    BlockSizeResult,
    resolve_block_sizes,
    sharing_load,
    system_fingerprint,
)
from ..core.conformance import ModeWindow, calibrated_system
from ..core.params import GatewaySystem, ParameterError, StreamSpec
from ..core.timing import block_round_length, tau_hat
from ..sim.faults import CHURN_KINDS, STREAM_JOIN, STREAM_LEAVE, FaultError, FaultPlan, FaultSpec
from ..sim.trace import Kind
from .accelerator_tile import AcceleratorTile
from .gateway import StreamBinding
from .system import MPSoC, SharedChain

__all__ = ["ModeTransition", "ReconfigurationManager"]


@dataclass(frozen=True)
class ModeTransition:
    """One executed (or refused) online mode transition."""

    index: int
    #: "stream_join" | "stream_leave" | "tile_failure"
    trigger: str
    #: stream name, or "failed_tile->spare_tile" for a remap
    detail: str
    requested_at: int
    quiesced_at: int
    completed_at: int
    #: closed-form latency budget the transition was held to (cycles)
    budget: int
    #: configuration-bus words paid to reprogram gateway + C-FIFO credits
    bus_words: int
    #: block sizes in force after the transition
    block_sizes: dict[str, int]
    #: False when the request was refused (infeasible, no spare, bad name);
    #: a refused transition changes nothing and opens no new mode window
    accepted: bool = True
    reason: str | None = None
    #: True when the re-solve reused or bounded with the previous solution
    warm_start: bool = False
    #: "manager" (idle-time) or "watchdog" (mid-block recovery path)
    via: str = "manager"
    #: the mode's analysis model after the transition (None when refused)
    system: GatewaySystem | None = field(default=None, compare=False, repr=False)

    @property
    def latency(self) -> int:
        """Request-to-completion transition delay in cycles."""
        return self.completed_at - self.requested_at

    @property
    def within_budget(self) -> bool:
        return self.latency <= self.budget

    def event(self) -> dict[str, Any]:
        """An attribution-compatible event record (see ``attribute_conformance``)."""
        return {
            "time": self.requested_at,
            "kind": f"transition:{self.trigger}",
            "detail": self.detail,
            "until": self.completed_at,
            "accepted": self.accepted,
        }

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "trigger": self.trigger,
            "detail": self.detail,
            "requested_at": self.requested_at,
            "quiesced_at": self.quiesced_at,
            "completed_at": self.completed_at,
            "latency": self.latency,
            "budget": self.budget,
            "within_budget": self.within_budget,
            "bus_words": self.bus_words,
            "block_sizes": dict(self.block_sizes),
            "accepted": self.accepted,
            "reason": self.reason,
            "warm_start": self.warm_start,
            "via": self.via,
        }


class ReconfigurationManager:
    """Executes hitless mode transitions on a running shared chain.

    Parameters
    ----------
    soc, chain:
        The built system and the gateway construct to manage.  The manager
        wires itself into the entry-gateway (``entry.reconfig``) and every
        tile's ``on_permanent_failure`` hook.
    system:
        The initial mode's analysis model (block sizes assigned).
    binding_factory:
        ``f(StreamSpec, eta) -> StreamBinding`` building the fifos,
        producer and consumer for a joining stream.  Joins are refused
        without one.
    on_stream_left:
        Called with the removed :class:`StreamBinding` after a leave, so
        the harness can settle its completion bookkeeping.
    eta_max:
        Cap on any re-solved block size (e.g. from C-FIFO headroom).
    reprogram_words:
        Configuration-bus words per stream to reprogram the gateway
        rotation table and C-FIFO credit counters on a mode change (one
        chain position's rewiring for a remap).
    transition_slack:
        Grace cycles added to every transition budget.
    failure_allowance:
        Extra budget for failure-triggered transitions (watchdog timeout,
        flush settling and backoff all precede the remap).
    """

    def __init__(
        self,
        soc: MPSoC,
        chain: SharedChain,
        system: GatewaySystem,
        *,
        initial_result: BlockSizeResult | None = None,
        binding_factory: Callable[[StreamSpec, int], StreamBinding] | None = None,
        on_stream_left: Callable[[StreamBinding], None] | None = None,
        backend: str = "scipy",
        c1_mode: str = "sum",
        eta_max: int | None = None,
        reprogram_words: int = 4,
        transition_slack: int = 512,
        failure_allowance: int = 0,
        poll_interval: int = 32,
        quiesce_poll: int = 4,
    ) -> None:
        system.require_block_sizes()
        self.sim = soc.sim
        self.soc = soc
        self.chain = chain
        self.bus = soc.config_bus
        self.system = system
        self.tracer = soc.tracer if soc.tracer.enabled else None
        self.backend = backend
        self.c1_mode = c1_mode
        self.eta_max = eta_max
        self.reprogram_words = int(reprogram_words)
        self.transition_slack = int(transition_slack)
        self.failure_allowance = int(failure_allowance)
        self.poll_interval = max(1, int(poll_interval))
        self.quiesce_poll = max(1, int(quiesce_poll))
        self._binding_factory = binding_factory
        self._on_stream_left = on_stream_left
        self._initial_system = system
        if initial_result is None:
            initial_result = BlockSizeResult(
                block_sizes={s.name: s.block_size for s in system.streams},
                objective=sum(s.block_size for s in system.streams),
                feasible=True,
                backend="given",
                load=sharing_load(system),
                fingerprint=system_fingerprint(system, c1_mode=c1_mode),
            )
        self._result = initial_result
        #: every transition, accepted and refused, in completion order
        self.transitions: list[ModeTransition] = []
        #: dead tiles awaiting a spare remap (drained by
        #: :meth:`execute_remaps`, from the watchdog path or the manager)
        self.pending_remaps: list[AcceleratorTile] = []
        self._failure_times: dict[str, int] = {}
        self._events: list[FaultSpec] = []
        self._busy = 0
        self._started = False
        chain.entry.reconfig = self
        for tile in chain.tiles:
            tile.on_permanent_failure = self.notify_tile_failure

    # -- request interface -------------------------------------------------
    def schedule(self, spec: FaultSpec) -> None:
        """Queue one join/leave request for its ``at`` cycle."""
        if spec.kind not in CHURN_KINDS:
            raise FaultError(
                f"the reconfiguration manager handles {sorted(CHURN_KINDS)} "
                f"requests, not {spec.kind!r}"
            )
        self._events.append(spec)
        self._events.sort(key=lambda s: s.at)

    def schedule_plan(self, plan: FaultPlan) -> None:
        """Queue every churn request of a fault plan."""
        for spec in plan.churn:
            self.schedule(spec)

    def notify_tile_failure(self, tile: AcceleratorTile) -> None:
        """Tile hook: queue a spare remap for a permanently failed tile.

        Synchronous and side-effect-free on the simulation — the remap
        itself runs from the watchdog's recovery path (mid-block failure)
        or the manager's own process (idle-time failure), both of which
        first drive the chain to quiescence.
        """
        if tile in self.pending_remaps:
            return
        self._failure_times.setdefault(tile.name, self.sim.now)
        self.pending_remaps.append(tile)

    def start(self) -> None:
        """Spawn the manager's scheduling process (idempotent)."""
        if self._started:
            return
        self._started = True
        self.sim.process(self._run(), name="reconfig-manager")

    # -- derived views -----------------------------------------------------
    @property
    def busy(self) -> bool:
        """A transition is mid-flight (between freeze and its record)."""
        return self._busy > 0

    @property
    def accepted(self) -> list[ModeTransition]:
        return [t for t in self.transitions if t.accepted]

    def mode_windows(self) -> list[ModeWindow]:
        """The run's steady modes, for per-mode conformance checking.

        Mode ``k`` covers blocks admitted from transition ``k``'s
        completion up to (excluding) transition ``k+1``'s request; the
        transitions' own quiesce/reprogram time lies between windows, where
        no steady-state bound applies.
        """
        windows: list[ModeWindow] = []
        start = 0
        current = self._initial_system
        for t in self.accepted:
            windows.append(
                ModeWindow(index=len(windows), start=start,
                           end=t.requested_at, system=current)
            )
            if t.system is not None:
                current = t.system
            start = t.completed_at
        windows.append(
            ModeWindow(index=len(windows), start=start, end=None, system=current)
        )
        return windows

    def transition_events(self) -> list[dict[str, Any]]:
        """Attribution-compatible records for every transition."""
        return [t.event() for t in self.transitions]

    # -- the scheduling process --------------------------------------------
    def _run(self):
        while True:
            if self.pending_remaps:
                yield from self._idle_failover()
                continue
            if self._events and self._events[0].at <= self.sim.now:
                spec = self._events.pop(0)
                self._busy += 1
                try:
                    yield from self._transition(spec)
                finally:
                    self._busy -= 1
                continue
            if not self._events and not self._spares_left():
                return
            delay = self.poll_interval
            if self._events:
                delay = min(delay, max(1, self._events[0].at - self.sim.now))
            yield self.sim.timeout(delay)

    def _spares_left(self) -> bool:
        return any(t.dormant for t in self.soc.spare_tiles)

    def _await_quiescent(self):
        entry = self.chain.entry
        while not entry.quiescent:
            yield self.sim.timeout(self.quiesce_poll)

    # -- spare failover ----------------------------------------------------
    def _idle_failover(self):
        """Handle a tile failure noticed outside any watchdog recovery."""
        entry = self.chain.entry
        entry.freeze()
        yield from self._await_quiescent()
        if self.pending_remaps:
            # not already drained by a concurrent watchdog recovery
            yield from self.execute_remaps(trigger="manager")
        entry.thaw()

    def execute_remaps(self, trigger: str = "manager"):
        """Remap every pending dead tile onto a spare (chain must be quiet).

        Idempotent and re-entrant: the watchdog calls this from its
        recovery path before replaying an aborted block, the manager from
        :meth:`_idle_failover`; whoever arrives first drains the queue.
        """
        self._busy += 1
        try:
            yield from self._execute_remaps(trigger)
        finally:
            self._busy -= 1

    def _execute_remaps(self, trigger: str):
        while self.pending_remaps:
            failed = self.pending_remaps.pop(0)
            requested_at = self._failure_times.pop(failed.name, self.sim.now)
            quiesced_at = self.sim.now
            words = self.reprogram_words
            budget = (self.failure_allowance + words * self.bus.word_time
                      + self.transition_slack)
            spare = self.soc.take_spare()
            if spare is None:
                self._record(ModeTransition(
                    index=len(self.transitions), trigger="tile_failure",
                    detail=failed.name, requested_at=requested_at,
                    quiesced_at=quiesced_at, completed_at=self.sim.now,
                    budget=budget, bus_words=0,
                    block_sizes=dict(self._result.block_sizes),
                    accepted=False, reason="no-spare", via=trigger,
                ))
                continue
            self.chain.remap_tile(failed, spare)
            yield from self.bus.transfer(words, label=f"remap:{failed.name}")
            self._record(ModeTransition(
                index=len(self.transitions), trigger="tile_failure",
                detail=f"{failed.name}->{spare.name}",
                requested_at=requested_at, quiesced_at=quiesced_at,
                completed_at=self.sim.now, budget=budget, bus_words=words,
                block_sizes=dict(self._result.block_sizes), via=trigger,
                system=self.system,
            ))

    # -- stream churn ------------------------------------------------------
    def _transition(self, spec: FaultSpec):
        entry = self.chain.entry
        requested_at = self.sim.now
        target = spec.target

        def refuse(reason: str, quiesced_at: int | None = None) -> None:
            self._record(ModeTransition(
                index=len(self.transitions), trigger=spec.kind, detail=target,
                requested_at=requested_at,
                quiesced_at=self.sim.now if quiesced_at is None else quiesced_at,
                completed_at=self.sim.now, budget=0, bus_words=0,
                block_sizes=dict(self._result.block_sizes),
                accepted=False, reason=reason,
            ))

        # cheap validation before touching admission
        if spec.kind == STREAM_JOIN:
            if self._binding_factory is None:
                refuse("no-binding-factory")
                return
            if target in entry._by_name:
                refuse("already-bound")
                return
        else:
            if target not in entry._by_name:
                refuse("not-bound")
                return
            if len(self.system.streams) == 1:
                refuse("last-stream")
                return

        budget = (block_round_length(calibrated_system(self.system))
                  + self.transition_slack)
        entry.freeze()
        yield from self._await_quiescent()
        quiesced_at = self.sim.now

        if spec.kind == STREAM_JOIN:
            joining = StreamSpec(target, spec.throughput,
                                 int(spec.params["reconfigure"]))
            streams = (*self.system.streams, joining)
        else:
            streams = tuple(s for s in self.system.streams if s.name != target)
        candidate = replace(self.system, streams=streams)
        try:
            result = resolve_block_sizes(
                candidate, previous=self._result, backend=self.backend,
                c1_mode=self.c1_mode, eta_max=self.eta_max,
            )
        except ParameterError as exc:
            refuse(f"infeasible: {exc}", quiesced_at=quiesced_at)
            entry.thaw()
            return
        sizes = dict(result.block_sizes)
        if spec.kind == STREAM_JOIN and spec.params.get("block_size"):
            # a caller-supplied η is honoured as a floor (a larger block
            # only loosens the joiner's own Eq. 5 constraint)
            sizes[target] = max(sizes[target], int(spec.params["block_size"]))
        sizes = self._quantize(candidate, sizes)
        new_system = candidate.with_block_sizes(sizes)

        words = self.reprogram_words * max(1, len(streams))
        budget += words * self.bus.word_time
        if spec.kind == STREAM_LEAVE:
            binding = entry.remove_binding(target)
        yield from self.bus.transfer(words, label=f"mode:{len(self.transitions)}")
        if spec.kind == STREAM_JOIN:
            binding = self._binding_factory(new_system.stream(target),
                                            sizes[target])
            entry.add_binding(binding)
            self.chain.bindings[target] = binding
        for name, eta in sizes.items():
            b = entry._by_name.get(name)
            if b is not None and b.eta != eta:
                b.eta = eta
        self.system = new_system
        self._result = replace(result, block_sizes=dict(sizes))
        self._retune_watchdog(new_system)
        entry.thaw()
        if spec.kind == STREAM_LEAVE and self._on_stream_left is not None:
            self._on_stream_left(binding)
        self._record(ModeTransition(
            index=len(self.transitions), trigger=spec.kind, detail=target,
            requested_at=requested_at, quiesced_at=quiesced_at,
            completed_at=self.sim.now, budget=budget, bus_words=words,
            block_sizes=dict(sizes), warm_start=result.warm_start,
            system=new_system,
        ))

    def _retune_watchdog(self, system: GatewaySystem) -> None:
        """Re-derive per-stream watchdog budgets for the new mode.

        The harness seeds the watchdog with the calibrated τ̂ bound per
        *initial* stream; after a transition the mode has a different
        round, and a joined stream would otherwise fall back to the huge
        catch-all default budget — turning a tile failure under its block
        into a 100k-cycle detection latency.
        """
        wd = self.chain.entry.watchdog
        if wd is None or not wd.budgets:
            return
        cal = calibrated_system(system)
        wd.budgets = {s.name: tau_hat(cal, s.name) for s in system.streams}

    def _quantize(self, system: GatewaySystem, sizes: dict[str, int]) -> dict[str, int]:
        """Round block sizes up to whole output blocks, Eq. 5 preserved.

        The ILP knows nothing about the chain's output ratio; when the
        ratio's denominator is ``d > 1`` every η must be a multiple of
        ``d``.  Rounding one η up grows the round length, so the others are
        re-checked with the closed-form Eq. 5 requirement until stable.
        """
        denom = 1
        for b in self.chain.bindings.values():
            denom = max(denom, b.output_ratio.denominator)
        if denom == 1:
            return sizes

        def up(x: int) -> int:
            return -(-x // denom) * denom

        sizes = {k: up(v) for k, v in sizes.items()}
        c0 = system.c0
        flush = system.flush_stages
        n = len(system.streams)
        r_sum = sum(s.reconfigure for s in system.streams)
        for _ in range(2 * n + 2):
            changed = False
            for s in system.streams:
                others = sum(v for k, v in sizes.items() if k != s.name)
                c1 = r_sum if self.c1_mode == "sum" else s.reconfigure
                den = 1 - c0 * s.throughput
                if den <= 0:
                    return sizes
                need = up(max(1, ceil(
                    s.throughput * (c1 + c0 * (others + flush * n)) / den
                )))
                if sizes[s.name] < need:
                    sizes[s.name] = need
                    changed = True
            if not changed:
                break
        return sizes

    # -- bookkeeping -------------------------------------------------------
    def _record(self, transition: ModeTransition) -> None:
        self.transitions.append(transition)
        if self.tracer:
            kind = {
                STREAM_JOIN: Kind.STREAM_JOIN,
                STREAM_LEAVE: Kind.STREAM_LEAVE,
                "tile_failure": Kind.TILE_REMAP,
            }.get(transition.trigger, Kind.MODE_CHANGE)
            self.tracer.log(self.sim.now, "reconfig", kind,
                            detail=transition.detail,
                            accepted=transition.accepted,
                            reason=transition.reason,
                            latency=transition.latency,
                            budget=transition.budget,
                            within_budget=transition.within_budget)
