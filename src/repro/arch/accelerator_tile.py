"""Accelerator tiles (paper Section IV-B).

An accelerator tile couples a coarsely-programmable stream kernel to the
ring through its network interface: it consumes the incoming hardware-FIFO
stream, fires the kernel (``ρ_A`` cycles per sample) and pushes results into
the outgoing stream, stalling automatically when it "runs out of data or
space" — the stalls fall out of the credit-based channels.

Context switches (state save/load) are *passive* from the tile's point of
view: the entry-gateway drives them over the configuration bus and only does
so while the pipeline is idle — the tile itself just exposes
``save_state``/``load_state``.  A tile swap while a word is mid-kernel would
corrupt data exactly as the paper warns; the gateway protocol prevents it,
and the tile asserts it.
"""

from __future__ import annotations

from typing import Any

from ..accel.base import StreamKernel
from ..sim import Interrupt, SimulationError, Simulator, Tracer
from .ni import HardwareFifoChannel

__all__ = ["AcceleratorTile"]


class AcceleratorTile:
    """A stream kernel mounted on the ring between two hardware FIFOs.

    A tile may be built *dormant* (``kernel=None``): a powered-down cold
    spare with no channels and no running process.  :meth:`adopt` brings it
    online in a failed tile's place — it inherits the kernel (the
    computation state survives; only the tile hardware died) and the failed
    tile's channel endpoints.  :meth:`fail_permanently` is the other
    direction: the tile dies for good, its process exits, and it never
    consumes input again.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        kernel: StreamKernel | None = None,
        input_channel: HardwareFifoChannel | None = None,
        output_channel: HardwareFifoChannel | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.kernel = kernel
        self.input = input_channel
        self.output = output_channel
        self.tracer = tracer
        self.samples_in = 0
        self.samples_out = 0
        self.busy = False
        #: outputs computed but not yet pushed into the outgoing channel
        self.pending_out = 0
        #: permanently failed — the tile's process has exited for good
        self.dead = False
        #: optional :class:`repro.sim.faults.FaultInjector` stall hook
        self.fault_injector = None
        #: called with this tile when it fails permanently (failover hook)
        self.on_permanent_failure = None
        self._shadow_bank: dict[str, dict[str, Any]] = {}
        self._process = None
        if kernel is not None:
            if input_channel is None or output_channel is None:
                raise SimulationError(
                    f"{name}: an active tile needs both channel endpoints"
                )
            self._process = sim.process(self._run(), name=f"acc:{name}")

    @property
    def dormant(self) -> bool:
        """A cold spare: built without a kernel and not yet adopted."""
        return self.kernel is None and not self.dead

    def adopt(
        self,
        kernel: StreamKernel,
        input_channel: HardwareFifoChannel,
        output_channel: HardwareFifoChannel,
        shadow_bank: dict[str, dict[str, Any]] | None = None,
    ) -> None:
        """Bring a dormant spare online in a failed tile's chain position."""
        if not self.dormant:
            raise SimulationError(
                f"{self.name}: only a dormant spare can adopt a chain position"
            )
        self.kernel = kernel
        self.input = input_channel
        self.output = output_channel
        if shadow_bank:
            self._shadow_bank = dict(shadow_bank)
        self._process = self.sim.process(self._run(), name=f"acc:{self.name}")
        if self.tracer:
            self.tracer.log(self.sim.now, self.name, "adopt",
                            input=input_channel.name, output=output_channel.name)

    def fail_permanently(self) -> None:
        """Mark the tile dead; its process exits at the next firing check.

        The word being consumed when the failure strikes is lost — the
        watchdog/retransmission path replays the block once the chain is
        remapped onto a spare.
        """
        already_dead = self.dead
        self.dead = True
        self.busy = False
        self.pending_out = 0
        if self.tracer:
            self.tracer.log(self.sim.now, self.name, "tile_failed")
        if self._process is not None and self._process.is_alive:
            # unblock a process parked in recv(); its loop exits on the
            # Interrupt instead of stealing one more word from the channel
            self._process.interrupt("tile-failure")
        if not already_dead and self.on_permanent_failure is not None:
            self.on_permanent_failure(self)

    def _run(self):
        try:
            while True:
                word = yield from self.input.recv()
                if self.dead:
                    return
                if (
                    self.fault_injector is not None
                    and self.fault_injector.tile_fails(self.name)
                ):
                    # the received word dies with the tile
                    self.fail_permanently()
                    return
                self.busy = True
                if self.kernel.rho:
                    yield self.sim.timeout(self.kernel.rho)
                if self.fault_injector is not None:
                    extra = self.fault_injector.accel_extra(self.name)
                    if extra:
                        yield self.sim.timeout(extra)
                outputs = self.kernel.process(word)
                self.samples_in += 1
                self.busy = False
                if self.tracer:
                    self.tracer.log(self.sim.now, self.name, "fire",
                                    produced=len(outputs))
                self.pending_out = len(outputs)
                for out in outputs:
                    yield from self.output.send(out)
                    self.samples_out += 1
                    self.pending_out -= 1
        except Interrupt:
            # fail_permanently() while parked: the tile dies where it stood
            return

    # -- context switching (driven by the entry-gateway) -------------------
    @property
    def idle(self) -> bool:
        """No word is mid-kernel and nothing waits in the input buffer."""
        return not self.busy and self.input.buffered == 0

    def save_state(self) -> dict[str, Any]:
        """Snapshot kernel state; only legal while the tile is idle."""
        if self.busy:
            raise SimulationError(
                f"{self.name}: state save while processing would corrupt data"
            )
        return self.kernel.get_state()

    def load_state(self, state: dict[str, Any]) -> None:
        """Restore kernel state; only legal while the tile is idle."""
        if self.busy:
            raise SimulationError(
                f"{self.name}: state load while processing would corrupt data"
            )
        self.kernel.set_state(state)

    @property
    def state_words(self) -> int:
        """Context size in configuration-bus words."""
        return self.kernel.state_words

    # -- shadow contexts (the paper's future-work extension) ----------------
    #
    # Section VI-A: "we are working on techniques to improve the speed at
    # which state can be saved and restored".  Shadow contexts realise
    # that: the tile holds one complete register set per stream and a
    # context switch is a constant-time bank swap instead of a
    # word-by-word bus transfer.

    def install_shadow(self, stream: str, state: dict[str, Any]) -> None:
        """Preload a stream's context into the tile's shadow bank."""
        self._shadow_bank[stream] = state

    def activate_shadow(self, outgoing: str | None, incoming: str) -> None:
        """Bank-swap contexts: park the outgoing stream's state, load the
        incoming one.  Only legal while idle, like any context switch."""
        if self.busy:
            raise SimulationError(
                f"{self.name}: shadow switch while processing would corrupt data"
            )
        if incoming not in self._shadow_bank:
            raise SimulationError(
                f"{self.name}: no shadow context installed for {incoming!r}"
            )
        if outgoing is not None:
            self._shadow_bank[outgoing] = self.kernel.get_state()
        self.kernel.set_state(self._shadow_bank[incoming])

    def shadow_state(self, stream: str) -> dict[str, Any]:
        """Inspect a parked shadow context (tests/diagnostics)."""
        return self._shadow_bank[stream]
