"""Drive a :class:`~repro.core.params.GatewaySystem` on the cycle-level MPSoC.

This is the glue between the analysis model and the architecture
simulation: given the parameter object the temporal analysis reasons
about, it instantiates a matching MPSoC — one accelerator tile per
:class:`~repro.core.params.AcceleratorSpec` (firing duration ``ρ``), one
backlogged producer/consumer pair per stream, the entry/exit-gateway pair
in between — runs it for a number of blocks per stream, and hands back the
observability layer: per-stream :class:`~repro.sim.metrics.StreamMetrics`,
the gateway utilization breakdown, and the Eq. 2–5 bound-conformance
report of :mod:`repro.core.conformance`.

Streams are fed *backlogged* (every input sample available up front), the
regime under which the τ̂/ε̂/γ/throughput comparisons are meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..accel import MixerKernel
from ..core.conformance import (
    AttributedReport,
    ConformanceReport,
    ModalConformanceReport,
    attribute_conformance,
    attribute_modal_conformance,
    calibrated_system,
    check_conformance,
    check_modal_conformance,
)
from ..core.params import GatewaySystem, StreamSpec
from ..core.timing import tau_hat
from ..sim.metrics import (
    GatewayUtilization,
    StreamMetrics,
    fastpath_summary,
    gateway_utilization,
    stream_metrics,
)
from ..sim import Signal, SimulationError, Simulator
from ..sim.faults import (
    AdmissionController,
    FaultInjector,
    FaultPlan,
    StreamRequirement,
    WatchdogConfig,
)
from ..sim.trace import Kind
from .gateway import StreamBinding
from .reconfig import ReconfigurationManager
from .scheduler import Get, Put, TaskSpec
from .system import MPSoC, SharedChain

__all__ = ["SimulationRun", "SimulationStalled", "simulate_system"]


class SimulationStalled(SimulationError):
    """``simulate_system`` hit its ``max_cycles`` guard before the streams
    drained.  The message names the stalled gateways and streams."""

    def __init__(self, diagnostic: str) -> None:
        super().__init__(diagnostic)
        self.diagnostic = diagnostic


@dataclass
class SimulationRun:
    """A completed gateway-system simulation plus its observability hooks."""

    system: GatewaySystem
    soc: MPSoC
    chain: SharedChain
    blocks: int
    poll_interval: int
    horizon: int = field(default=0)
    injector: FaultInjector | None = field(default=None)
    watchdog: WatchdogConfig | None = field(default=None)
    admission: AdmissionController | None = field(default=None)
    #: online-reconfiguration manager, set on churn runs (joins/leaves
    #: scheduled, or spare tiles provisioned); None on static runs
    reconfig: ReconfigurationManager | None = field(default=None)

    def metrics(self) -> dict[str, StreamMetrics]:
        """Per-stream observed metrics, in round-robin order."""
        tracer = self.soc.tracer if self.soc.tracer.enabled else None
        return {
            name: stream_metrics(binding, tracer)
            for name, binding in self.chain.bindings.items()
        }

    def utilization(self) -> GatewayUtilization:
        """Entry-gateway cycle breakdown over the run."""
        return gateway_utilization(self.chain.entry, self.horizon)

    def fastpath(self) -> dict:
        """Fused-data-path take rates for the ring and its FIFOs/channels."""
        return fastpath_summary(self.soc.ring)

    def conformance(self, calibrated: bool = True) -> ConformanceReport:
        """Observed-vs-bound report (Eq. 2–5).

        With ``calibrated=True`` (the default) the bounds are instantiated
        with the architecture's measured per-sample costs, the regime in
        which zero violations are expected; ``calibrated=False`` checks
        against the bare model parameters, which the simulated overheads
        legitimately exceed — useful for seeing how much calibration the
        architecture needs.
        """
        model = calibrated_system(self.system) if calibrated else self.system
        slack = self.poll_interval * len(self.system.streams)
        return check_conformance(model, self.metrics().values(), wait_slack=slack)

    def mode_conformance(self, calibrated: bool = True) -> ModalConformanceReport:
        """Per-mode Eq. 2–5 conformance of a churn run.

        Each steady mode between transitions is checked against its own
        stream set and block sizes; wait/turnaround chains reset at every
        transition, and the transitions' quiesce/reprogram intervals fall
        between the windows, where no steady-state bound applies.
        """
        if self.reconfig is None:
            raise SimulationError(
                "mode_conformance needs a churn run (no reconfiguration "
                "manager was armed); use conformance() for static runs"
            )
        windows = self.reconfig.mode_windows()
        slack = (self.poll_interval
                 * max(len(w.system.streams) for w in windows)
                 + self.reconfig.quiesce_poll)
        return check_modal_conformance(
            windows, self.chain.bindings, wait_slack=slack,
            calibrate=calibrated,
        )

    def attributed_conformance(self, calibrated: bool = True) -> AttributedReport:
        """Conformance report with every violation traced to injected faults.

        On a fault-free run this degenerates to the plain report with zero
        injected events; with a fault plan, ``fully_attributed`` is the
        property to assert — an unattributed violation is a genuine
        refinement bug, not fault fallout.  On a churn run the per-mode
        report is attributed, with the transition records themselves as
        secondary causes (a block aborted by a mid-block tile failure
        legitimately blows τ̂; the transition explains it).
        """
        events = self.injector.events if self.injector is not None else []
        if self.reconfig is not None:
            modal = self.mode_conformance(calibrated=calibrated)
            secondary = self.reconfig.transition_events()
            times = [e["time"] for e in events] + [e["time"] for e in secondary]
            if times:
                first = min(times)
                secondary = secondary + [
                    r for r in self.chain.entry.recovery_log
                    if r["time"] >= first
                ]
            return attribute_modal_conformance(modal, events,
                                               secondary=secondary)
        # recovery actions (watchdog flush, degrade/readmit pause) taken
        # after the first real fault are fault fallout: violations they
        # cause are explained, not refinement bugs
        secondary = []
        if events:
            first = min(e["time"] for e in events)
            secondary = [r for r in self.chain.entry.recovery_log
                         if r["time"] >= first]
        return attribute_conformance(
            self.conformance(calibrated=calibrated), events,
            self.chain.bindings, secondary=secondary,
        )

    def fault_report(self) -> dict:
        """Recovery outcome of the run: injected faults, per-stream recovery
        counters, the entry gateway's recovery log and the attribution of
        any bound violations."""
        attributed = self.attributed_conformance()
        streams = {}
        for name, m in self.metrics().items():
            streams[name] = {
                "blocks_done": m.blocks_done,
                "retries": m.retries,
                "watchdog_timeouts": m.watchdog_timeouts,
                "recovery_cycles": m.recovery_cycles,
                "recovery_latencies": list(m.recovery_latencies),
                "degraded_cycles": m.degraded_cycles,
                "failed": m.failed,
                "recovered": m.recovered,
            }
        report = {
            "injected": [dict(e) for e in attributed.injected],
            "streams": streams,
            "recovery_log": [dict(r) for r in self.chain.entry.recovery_log],
            "violations": len(attributed.attributions),
            "fully_attributed": attributed.fully_attributed,
            "unattributed": [v.to_dict() for v in attributed.unattributed],
        }
        if self.reconfig is not None:
            report["transitions"] = [
                t.to_dict() for t in self.reconfig.transitions
            ]
            report["remaps"] = [list(r) for r in self.chain.remaps]
        return report


def simulate_system(
    system: GatewaySystem,
    blocks: int = 4,
    trace: bool = True,
    trace_mode: str = "full",
    trace_capacity: int | None = None,
    poll_interval: int = 1,
    context_mode: str = "software",
    faults: FaultPlan | None = None,
    watchdog: WatchdogConfig | None = None,
    admission: AdmissionController | bool | None = None,
    max_cycles: int | None = None,
    spares: int = 0,
    no_fastpath: bool = False,
) -> SimulationRun:
    """Simulate ``system`` with ``blocks`` backlogged blocks per stream.

    Every stream must have a block size assigned (run Algorithm 1 first).
    Returns once all streams' outputs have been drained or the conservative
    horizon is reached.

    A non-empty ``faults`` plan arms a :class:`~repro.sim.faults.FaultInjector`
    and (unless overridden) a default watchdog whose per-stream budgets are
    the calibrated τ̂ block-time bounds, plus an admission controller built
    from the streams' μ requirements.  Pass a ``watchdog`` explicitly to
    guard a fault-free run, or ``admission=False`` to disable degradation.

    ``max_cycles``, when given, replaces the conservative deadlock cap and
    turns hitting it into a :class:`SimulationStalled` error whose message
    names the stalled gateways and streams.

    ``no_fastpath=True`` disables the ring's fused fast path for this run
    (equivalent to the ``REPRO_NO_FASTPATH=1`` environment kill switch) —
    observable behaviour must not change, only execution speed.

    A plan containing ``stream_join``/``stream_leave`` requests — or a
    positive ``spares`` count (dormant cold-spare tiles for permanent-
    tile-failure failover) — switches the run into **churn mode**: a
    :class:`~repro.arch.reconfig.ReconfigurationManager` executes the
    requests as hitless online mode transitions, streams are fed
    continuously instead of with a fixed backlog, and a stream counts as
    done once it has completed ``blocks`` blocks (or left, or failed).
    Static runs are cycle-for-cycle unchanged by this feature.
    """
    system.require_block_sizes()
    churn = spares > 0 or bool(faults is not None and faults.churn)
    kernels = []
    for spec in system.accelerators:
        k = MixerKernel(0.0)
        k.rho = spec.rho  # instance override of the class-level firing duration
        kernels.append(k)

    soc = MPSoC(
        n_stations=4 + len(kernels),
        trace=trace,
        trace_kinds=Kind.METRICS if trace else None,
        trace_mode=trace_mode,
        trace_capacity=trace_capacity,
    )
    if no_fastpath:
        # per-run override of the fused ring fast path (the differential
        # suite and the REPRO_NO_FASTPATH CI leg compare against this)
        soc.ring.fastpath = False
    prod = soc.add_processor("prod")
    cons = soc.add_processor("cons")
    entry_station = 2
    exit_station = entry_station + len(kernels) + 1

    # churn runs re-solve block sizes online, so fifo headroom must cover
    # grown η values and continuously-fed backlog, not just the fixed total
    cap_words = 4 * (max(s.block_size for s in system.streams) * blocks + 8)

    configs = []
    totals: dict[str, int] = {}
    for spec in system.streams:
        eta = spec.block_size
        total = eta * blocks
        totals[spec.name] = total
        capacity = cap_words if churn else total + 8
        in_fifo = prod.fifo_to(entry_station, capacity=capacity,
                               name=f"{spec.name}.in")
        out_fifo = soc.software_fifo(exit_station, cons, capacity=capacity,
                                     name=f"{spec.name}.out")
        configs.append({
            "name": spec.name,
            "eta": eta,
            "in_fifo": in_fifo,
            "out_fifo": out_fifo,
            "states": [MixerKernel(0.0).get_state() for _ in kernels],
            "reconfigure_cycles": spec.reconfigure,
        })
    drained = Signal(soc.sim, name="harness.drained")

    injector = None
    if faults is not None and len(faults):
        injector = FaultInjector(faults, soc.sim,
                                 tracer=soc.tracer if trace else None)
    wd = watchdog
    adm = admission if isinstance(admission, AdmissionController) else None
    if injector is not None or wd is not None:
        cal = calibrated_system(system)
        if wd is None:
            # budget = calibrated block-time bound + generous slack for
            # injected per-flit delays that stay within recoverable range
            budgets = {s.name: tau_hat(cal, s.name) for s in system.streams}
            wd = WatchdogConfig(budgets=budgets, slack=256)
        if adm is None and admission is not False and len(system.streams) > 1:
            adm = AdmissionController([
                StreamRequirement(
                    name=s.name, mu=s.throughput,
                    tau=tau_hat(cal, s.name), eta=s.block_size,
                )
                for s in system.streams
            ])
        if not churn:
            # a failed stream will never drain; count it as done so the run
            # terminates instead of spinning to the cycle cap (churn runs
            # track failure through the per-stream watchers instead)
            user_failed_cb = wd.on_stream_failed

            def _on_stream_failed(name: str) -> None:
                drained.release(1)
                if user_failed_cb is not None:
                    user_failed_cb(name)

            wd.on_stream_failed = _on_stream_failed

    chain = soc.shared_chain(
        "sys", kernels, configs,
        entry_copy=system.entry_copy, exit_copy=system.exit_copy,
        ni_capacity=system.ni_capacity, poll_interval=poll_interval,
        context_mode=context_mode,
        watchdog=wd, admission=adm, fault_injector=injector,
    )

    book = None
    reconfig = None
    if churn:
        for i in range(spares):
            soc.add_spare_tile(f"sys.spare{i}")
        book = _ChurnBook(soc.sim, drained, blocks)
        ratio = next(iter(chain.bindings.values())).output_ratio
        failure_allowance = 0
        if wd is not None:
            failure_allowance = (
                max(wd.budgets.values(), default=wd.default_budget)
                + wd.slack + wd.settle_cycles * wd.settle_rounds
                + wd.backoff_cap
            )

        def _joined_binding(spec: StreamSpec, eta: int) -> StreamBinding:
            in_fifo = soc.software_fifo(prod, entry_station,
                                        capacity=cap_words,
                                        name=f"{spec.name}.in")
            out_fifo = soc.software_fifo(exit_station, cons,
                                         capacity=cap_words,
                                         name=f"{spec.name}.out")
            if injector is not None:
                in_fifo.fault_injector = injector
                out_fifo.fault_injector = injector
            binding = StreamBinding(
                name=spec.name, eta=eta, in_fifo=in_fifo, out_fifo=out_fifo,
                states=[MixerKernel(0.0).get_state() for _ in kernels],
                output_ratio=ratio, reconfigure_cycles=spec.reconfigure,
            )
            book.track(binding)
            return binding

        reconfig = ReconfigurationManager(
            soc, chain, system,
            binding_factory=_joined_binding,
            on_stream_left=lambda b: book.mark_done(b.name),
            eta_max=max(1, cap_words // 2),
            failure_allowance=failure_allowance,
        )
        if faults is not None:
            reconfig.schedule_plan(faults)
        reconfig.start()
        for cfg in configs:
            book.track(chain.binding(cfg["name"]))
    else:
        def producer(fifo, count):
            def gen():
                for i in range(count):
                    yield Put(fifo, float(i))
            return gen

        def consumer(fifo, total_out):
            def gen():
                for _ in range(total_out):
                    yield Get(fifo)
                drained.release(1)
            return gen

        for cfg in configs:
            name, total = cfg["name"], totals[cfg["name"]]
            out_per_block = chain.binding(name).expected_out
            prod.add_task(TaskSpec(f"feed:{name}", producer(cfg["in_fifo"], total)))
            cons.add_task(TaskSpec(f"drain:{name}",
                                   consumer(cfg["out_fifo"], out_per_block * blocks)))
        prod.start()
        cons.start()

    # Conservative cap in case a configuration deadlocks; the normal exit is
    # the drain of every stream's last output, so the measurement horizon is
    # not inflated by post-completion polling.
    max_eta = max(s.block_size for s in system.streams)
    max_r = max(s.reconfigure for s in system.streams)
    per_sample = system.entry_copy + sum(a.rho + 4 for a in system.accelerators) + 30
    cap = ((max_r + max_eta * per_sample) * blocks
           * (len(system.streams) + 2) + 10_000)
    if wd is not None:
        # recovery runs legitimately take much longer: budget the retries,
        # flush settling, backoff and degradation windows on top
        per_block_recovery = (wd.retry_limit + 1) * (
            wd.default_budget + wd.slack
            + wd.settle_cycles * wd.settle_rounds + wd.backoff_cap
        )
        cap += per_block_recovery * blocks * len(system.streams) + 100_000
        if adm is not None:
            cap += adm.healthy_window * len(system.streams)
    if churn:
        # transitions quiesce the chain and failures replay blocks; budget
        # each scheduled request and provisioned spare generously on top
        cap += 200_000 * (len(reconfig._events) + spares + 1)
    if max_cycles is not None:
        cap = max_cycles
    if churn:
        finished = soc.sim.run_while(
            lambda: not book.complete(reconfig), cap
        )
        if max_cycles is not None and not finished:
            raise SimulationStalled(_stall_diagnostic(chain, blocks, soc.sim.now))
    else:
        done = soc.sim.process(_wait_for(drained, len(configs)))
        if not soc.sim.run_until(done, cap) and max_cycles is not None:
            raise SimulationStalled(_stall_diagnostic(chain, blocks, soc.sim.now))
    return SimulationRun(
        system=system, soc=soc, chain=chain, blocks=blocks,
        poll_interval=poll_interval, horizon=max(1, soc.sim.now),
        injector=injector, watchdog=wd, admission=adm, reconfig=reconfig,
    )


class _ChurnBook:
    """Per-stream feeding, draining and completion tracking for churn runs.

    Static runs feed a fixed backlog and wait for a fixed output count;
    under churn neither is known up front (block sizes change online, and a
    leaving stream never drains its total), so every stream — initial or
    joined — gets a continuous feeder, a continuous drainer and a watcher
    that marks it done once it has completed the target number of blocks,
    failed, or left.
    """

    def __init__(self, sim: Simulator, drained: Signal, blocks: int,
                 poll: int = 64) -> None:
        self.sim = sim
        self.drained = drained
        self.blocks = blocks
        self.poll = max(1, int(poll))
        self.expected = 0
        self._done: set[str] = set()

    def track(self, binding: StreamBinding) -> None:
        """Feed, drain and watch one stream until it counts as done."""
        self.expected += 1
        self.sim.process(self._feed(binding), name=f"feed:{binding.name}")
        self.sim.process(self._drain(binding), name=f"drain:{binding.name}")
        self.sim.process(self._watch(binding), name=f"watch:{binding.name}")

    def mark_done(self, name: str) -> None:
        if name not in self._done:
            self._done.add(name)
            self.drained.release(1)

    def complete(self, reconfig: ReconfigurationManager) -> bool:
        """Every tracked stream done and no reconfiguration work pending."""
        return (len(self._done) >= self.expected
                and not reconfig._events
                and not reconfig.pending_remaps
                and not reconfig.busy)

    def _feed(self, binding: StreamBinding):
        # keep the input backlogged (the regime the bounds assume) without
        # ever blocking in put(): a done/left stream just stops being fed
        i = 0
        fifo = binding.in_fifo
        while binding.name not in self._done:
            if fifo.producer_space > 0:
                yield from fifo.put(float(i))
                i += 1
            else:
                yield self.sim.timeout(self.poll)

    def _drain(self, binding: StreamBinding):
        fifo = binding.out_fifo
        while binding.name not in self._done:
            ok, _word = fifo.try_get()
            if ok:
                yield self.sim.timeout(1)
            else:
                yield self.sim.timeout(self.poll)

    def _watch(self, binding: StreamBinding):
        while (binding.blocks_done < self.blocks
               and not binding.failed
               and binding.name not in self._done):
            yield self.sim.timeout(self.poll)
        self.mark_done(binding.name)


def _stall_diagnostic(chain: SharedChain, blocks: int, now: int) -> str:
    """Name what is stuck: gateways, streams and channels with residue."""
    entry, exit_gw = chain.entry, chain.exit
    current = entry._current.name if entry._current is not None else None
    active = exit_gw._active.name if exit_gw._active is not None else None
    lines = [
        f"simulation stalled at cycle {now} (max_cycles guard)",
        f"  entry gateway: current stream={current}, "
        f"idle tokens={entry.idle.count}, blocks admitted={entry.blocks_admitted}",
        f"  exit gateway: active stream={active}, "
        f"draining={exit_gw._draining}, discarded={exit_gw.discarded}",
    ]
    for name, b in chain.bindings.items():
        if b.failed:
            state = "FAILED"
        elif b.paused_at is not None:
            state = f"paused since cycle {b.paused_at}"
        elif b.blocks_done < blocks:
            state = "STALLED"
        else:
            state = "done"
        lines.append(
            f"  stream {name}: {b.blocks_done}/{blocks} blocks, "
            f"in={b.samples_in} out={b.samples_out}, "
            f"retries={b.retries}, {state}"
        )
    for ch in chain.channels:
        if ch.buffered or ch.words_in_flight:
            lines.append(
                f"  channel {ch.name}: {ch.buffered} buffered, "
                f"{ch.words_in_flight} in flight"
            )
    return "\n".join(lines)


def _wait_for(signal: Signal, units: int):
    yield signal.acquire(units)
