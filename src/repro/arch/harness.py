"""Drive a :class:`~repro.core.params.GatewaySystem` on the cycle-level MPSoC.

This is the glue between the analysis model and the architecture
simulation: given the parameter object the temporal analysis reasons
about, it instantiates a matching MPSoC — one accelerator tile per
:class:`~repro.core.params.AcceleratorSpec` (firing duration ``ρ``), one
backlogged producer/consumer pair per stream, the entry/exit-gateway pair
in between — runs it for a number of blocks per stream, and hands back the
observability layer: per-stream :class:`~repro.sim.metrics.StreamMetrics`,
the gateway utilization breakdown, and the Eq. 2–5 bound-conformance
report of :mod:`repro.core.conformance`.

Streams are fed *backlogged* (every input sample available up front), the
regime under which the τ̂/ε̂/γ/throughput comparisons are meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..accel import MixerKernel
from ..core.conformance import (
    ConformanceReport,
    calibrated_system,
    check_conformance,
)
from ..core.params import GatewaySystem
from ..sim.metrics import (
    GatewayUtilization,
    StreamMetrics,
    gateway_utilization,
    stream_metrics,
)
from ..sim import Signal
from ..sim.trace import Kind
from .scheduler import Get, Put, TaskSpec
from .system import MPSoC, SharedChain

__all__ = ["SimulationRun", "simulate_system"]


@dataclass
class SimulationRun:
    """A completed gateway-system simulation plus its observability hooks."""

    system: GatewaySystem
    soc: MPSoC
    chain: SharedChain
    blocks: int
    poll_interval: int
    horizon: int = field(default=0)

    def metrics(self) -> dict[str, StreamMetrics]:
        """Per-stream observed metrics, in round-robin order."""
        tracer = self.soc.tracer if self.soc.tracer.enabled else None
        return {
            name: stream_metrics(binding, tracer)
            for name, binding in self.chain.bindings.items()
        }

    def utilization(self) -> GatewayUtilization:
        """Entry-gateway cycle breakdown over the run."""
        return gateway_utilization(self.chain.entry, self.horizon)

    def conformance(self, calibrated: bool = True) -> ConformanceReport:
        """Observed-vs-bound report (Eq. 2–5).

        With ``calibrated=True`` (the default) the bounds are instantiated
        with the architecture's measured per-sample costs, the regime in
        which zero violations are expected; ``calibrated=False`` checks
        against the bare model parameters, which the simulated overheads
        legitimately exceed — useful for seeing how much calibration the
        architecture needs.
        """
        model = calibrated_system(self.system) if calibrated else self.system
        slack = self.poll_interval * len(self.system.streams)
        return check_conformance(model, self.metrics().values(), wait_slack=slack)


def simulate_system(
    system: GatewaySystem,
    blocks: int = 4,
    trace: bool = True,
    trace_mode: str = "full",
    trace_capacity: int | None = None,
    poll_interval: int = 1,
    context_mode: str = "software",
) -> SimulationRun:
    """Simulate ``system`` with ``blocks`` backlogged blocks per stream.

    Every stream must have a block size assigned (run Algorithm 1 first).
    Returns once all streams' outputs have been drained or the conservative
    horizon is reached.
    """
    system.require_block_sizes()
    kernels = []
    for spec in system.accelerators:
        k = MixerKernel(0.0)
        k.rho = spec.rho  # instance override of the class-level firing duration
        kernels.append(k)

    soc = MPSoC(
        n_stations=4 + len(kernels),
        trace=trace,
        trace_kinds=Kind.METRICS if trace else None,
        trace_mode=trace_mode,
        trace_capacity=trace_capacity,
    )
    prod = soc.add_processor("prod")
    cons = soc.add_processor("cons")
    entry_station = 2
    exit_station = entry_station + len(kernels) + 1

    configs = []
    totals: dict[str, int] = {}
    for spec in system.streams:
        eta = spec.block_size
        total = eta * blocks
        totals[spec.name] = total
        in_fifo = prod.fifo_to(entry_station, capacity=total + 8,
                               name=f"{spec.name}.in")
        out_fifo = soc.software_fifo(exit_station, cons, capacity=total + 8,
                                     name=f"{spec.name}.out")
        configs.append({
            "name": spec.name,
            "eta": eta,
            "in_fifo": in_fifo,
            "out_fifo": out_fifo,
            "states": [MixerKernel(0.0).get_state() for _ in kernels],
            "reconfigure_cycles": spec.reconfigure,
        })
    chain = soc.shared_chain(
        "sys", kernels, configs,
        entry_copy=system.entry_copy, exit_copy=system.exit_copy,
        ni_capacity=system.ni_capacity, poll_interval=poll_interval,
        context_mode=context_mode,
    )

    drained = Signal(soc.sim, name="harness.drained")

    def producer(fifo, count):
        def gen():
            for i in range(count):
                yield Put(fifo, float(i))
        return gen

    def consumer(fifo, total_out):
        def gen():
            for _ in range(total_out):
                yield Get(fifo)
            drained.release(1)
        return gen

    for cfg in configs:
        name, total = cfg["name"], totals[cfg["name"]]
        out_per_block = chain.binding(name).expected_out
        prod.add_task(TaskSpec(f"feed:{name}", producer(cfg["in_fifo"], total)))
        cons.add_task(TaskSpec(f"drain:{name}",
                               consumer(cfg["out_fifo"], out_per_block * blocks)))
    prod.start()
    cons.start()

    # Conservative cap in case a configuration deadlocks; the normal exit is
    # the drain of every stream's last output, so the measurement horizon is
    # not inflated by post-completion polling.
    max_eta = max(s.block_size for s in system.streams)
    max_r = max(s.reconfigure for s in system.streams)
    per_sample = system.entry_copy + sum(a.rho + 4 for a in system.accelerators) + 30
    cap = ((max_r + max_eta * per_sample) * blocks
           * (len(system.streams) + 2) + 10_000)
    done = soc.sim.process(_wait_for(drained, len(configs)))
    while not done.processed:
        nxt = soc.sim.peek()
        if nxt is None or nxt > cap:
            break
        soc.sim.step()
    return SimulationRun(
        system=system, soc=soc, chain=chain, blocks=blocks,
        poll_interval=poll_interval, horizon=max(1, soc.sim.now),
    )


def _wait_for(signal: Signal, units: int):
    yield signal.acquire(units)
