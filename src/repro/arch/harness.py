"""Drive a :class:`~repro.core.params.GatewaySystem` on the cycle-level MPSoC.

This is the glue between the analysis model and the architecture
simulation: given the parameter object the temporal analysis reasons
about, it instantiates a matching MPSoC — one accelerator tile per
:class:`~repro.core.params.AcceleratorSpec` (firing duration ``ρ``), one
backlogged producer/consumer pair per stream, the entry/exit-gateway pair
in between — runs it for a number of blocks per stream, and hands back the
observability layer: per-stream :class:`~repro.sim.metrics.StreamMetrics`,
the gateway utilization breakdown, and the Eq. 2–5 bound-conformance
report of :mod:`repro.core.conformance`.

Streams are fed *backlogged* (every input sample available up front), the
regime under which the τ̂/ε̂/γ/throughput comparisons are meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..accel import MixerKernel
from ..core.conformance import (
    AttributedReport,
    ConformanceReport,
    attribute_conformance,
    calibrated_system,
    check_conformance,
)
from ..core.params import GatewaySystem
from ..core.timing import tau_hat
from ..sim.metrics import (
    GatewayUtilization,
    StreamMetrics,
    gateway_utilization,
    stream_metrics,
)
from ..sim import Signal, SimulationError
from ..sim.faults import (
    AdmissionController,
    FaultInjector,
    FaultPlan,
    StreamRequirement,
    WatchdogConfig,
)
from ..sim.trace import Kind
from .scheduler import Get, Put, TaskSpec
from .system import MPSoC, SharedChain

__all__ = ["SimulationRun", "SimulationStalled", "simulate_system"]


class SimulationStalled(SimulationError):
    """``simulate_system`` hit its ``max_cycles`` guard before the streams
    drained.  The message names the stalled gateways and streams."""

    def __init__(self, diagnostic: str) -> None:
        super().__init__(diagnostic)
        self.diagnostic = diagnostic


@dataclass
class SimulationRun:
    """A completed gateway-system simulation plus its observability hooks."""

    system: GatewaySystem
    soc: MPSoC
    chain: SharedChain
    blocks: int
    poll_interval: int
    horizon: int = field(default=0)
    injector: FaultInjector | None = field(default=None)
    watchdog: WatchdogConfig | None = field(default=None)
    admission: AdmissionController | None = field(default=None)

    def metrics(self) -> dict[str, StreamMetrics]:
        """Per-stream observed metrics, in round-robin order."""
        tracer = self.soc.tracer if self.soc.tracer.enabled else None
        return {
            name: stream_metrics(binding, tracer)
            for name, binding in self.chain.bindings.items()
        }

    def utilization(self) -> GatewayUtilization:
        """Entry-gateway cycle breakdown over the run."""
        return gateway_utilization(self.chain.entry, self.horizon)

    def conformance(self, calibrated: bool = True) -> ConformanceReport:
        """Observed-vs-bound report (Eq. 2–5).

        With ``calibrated=True`` (the default) the bounds are instantiated
        with the architecture's measured per-sample costs, the regime in
        which zero violations are expected; ``calibrated=False`` checks
        against the bare model parameters, which the simulated overheads
        legitimately exceed — useful for seeing how much calibration the
        architecture needs.
        """
        model = calibrated_system(self.system) if calibrated else self.system
        slack = self.poll_interval * len(self.system.streams)
        return check_conformance(model, self.metrics().values(), wait_slack=slack)

    def attributed_conformance(self, calibrated: bool = True) -> AttributedReport:
        """Conformance report with every violation traced to injected faults.

        On a fault-free run this degenerates to the plain report with zero
        injected events; with a fault plan, ``fully_attributed`` is the
        property to assert — an unattributed violation is a genuine
        refinement bug, not fault fallout.
        """
        events = self.injector.events if self.injector is not None else []
        # recovery actions (watchdog flush, degrade/readmit pause) taken
        # after the first real fault are fault fallout: violations they
        # cause are explained, not refinement bugs
        secondary: list[dict] = []
        if events:
            first = min(e["time"] for e in events)
            secondary = [r for r in self.chain.entry.recovery_log
                         if r["time"] >= first]
        return attribute_conformance(
            self.conformance(calibrated=calibrated), events,
            self.chain.bindings, secondary=secondary,
        )

    def fault_report(self) -> dict:
        """Recovery outcome of the run: injected faults, per-stream recovery
        counters, the entry gateway's recovery log and the attribution of
        any bound violations."""
        attributed = self.attributed_conformance()
        streams = {}
        for name, m in self.metrics().items():
            streams[name] = {
                "blocks_done": m.blocks_done,
                "retries": m.retries,
                "watchdog_timeouts": m.watchdog_timeouts,
                "recovery_cycles": m.recovery_cycles,
                "recovery_latencies": list(m.recovery_latencies),
                "degraded_cycles": m.degraded_cycles,
                "failed": m.failed,
                "recovered": m.recovered,
            }
        return {
            "injected": [dict(e) for e in attributed.injected],
            "streams": streams,
            "recovery_log": [dict(r) for r in self.chain.entry.recovery_log],
            "violations": len(attributed.attributions),
            "fully_attributed": attributed.fully_attributed,
            "unattributed": [v.to_dict() for v in attributed.unattributed],
        }


def simulate_system(
    system: GatewaySystem,
    blocks: int = 4,
    trace: bool = True,
    trace_mode: str = "full",
    trace_capacity: int | None = None,
    poll_interval: int = 1,
    context_mode: str = "software",
    faults: FaultPlan | None = None,
    watchdog: WatchdogConfig | None = None,
    admission: AdmissionController | bool | None = None,
    max_cycles: int | None = None,
) -> SimulationRun:
    """Simulate ``system`` with ``blocks`` backlogged blocks per stream.

    Every stream must have a block size assigned (run Algorithm 1 first).
    Returns once all streams' outputs have been drained or the conservative
    horizon is reached.

    A non-empty ``faults`` plan arms a :class:`~repro.sim.faults.FaultInjector`
    and (unless overridden) a default watchdog whose per-stream budgets are
    the calibrated τ̂ block-time bounds, plus an admission controller built
    from the streams' μ requirements.  Pass a ``watchdog`` explicitly to
    guard a fault-free run, or ``admission=False`` to disable degradation.

    ``max_cycles``, when given, replaces the conservative deadlock cap and
    turns hitting it into a :class:`SimulationStalled` error whose message
    names the stalled gateways and streams.
    """
    system.require_block_sizes()
    kernels = []
    for spec in system.accelerators:
        k = MixerKernel(0.0)
        k.rho = spec.rho  # instance override of the class-level firing duration
        kernels.append(k)

    soc = MPSoC(
        n_stations=4 + len(kernels),
        trace=trace,
        trace_kinds=Kind.METRICS if trace else None,
        trace_mode=trace_mode,
        trace_capacity=trace_capacity,
    )
    prod = soc.add_processor("prod")
    cons = soc.add_processor("cons")
    entry_station = 2
    exit_station = entry_station + len(kernels) + 1

    configs = []
    totals: dict[str, int] = {}
    for spec in system.streams:
        eta = spec.block_size
        total = eta * blocks
        totals[spec.name] = total
        in_fifo = prod.fifo_to(entry_station, capacity=total + 8,
                               name=f"{spec.name}.in")
        out_fifo = soc.software_fifo(exit_station, cons, capacity=total + 8,
                                     name=f"{spec.name}.out")
        configs.append({
            "name": spec.name,
            "eta": eta,
            "in_fifo": in_fifo,
            "out_fifo": out_fifo,
            "states": [MixerKernel(0.0).get_state() for _ in kernels],
            "reconfigure_cycles": spec.reconfigure,
        })
    drained = Signal(soc.sim, name="harness.drained")

    injector = None
    if faults is not None and len(faults):
        injector = FaultInjector(faults, soc.sim,
                                 tracer=soc.tracer if trace else None)
    wd = watchdog
    adm = admission if isinstance(admission, AdmissionController) else None
    if injector is not None or wd is not None:
        cal = calibrated_system(system)
        if wd is None:
            # budget = calibrated block-time bound + generous slack for
            # injected per-flit delays that stay within recoverable range
            budgets = {s.name: tau_hat(cal, s.name) for s in system.streams}
            wd = WatchdogConfig(budgets=budgets, slack=256)
        if adm is None and admission is not False and len(system.streams) > 1:
            adm = AdmissionController([
                StreamRequirement(
                    name=s.name, mu=s.throughput,
                    tau=tau_hat(cal, s.name), eta=s.block_size,
                )
                for s in system.streams
            ])
        # a failed stream will never drain; count it as done so the run
        # terminates instead of spinning to the cycle cap
        user_failed_cb = wd.on_stream_failed

        def _on_stream_failed(name: str) -> None:
            drained.release(1)
            if user_failed_cb is not None:
                user_failed_cb(name)

        wd.on_stream_failed = _on_stream_failed

    chain = soc.shared_chain(
        "sys", kernels, configs,
        entry_copy=system.entry_copy, exit_copy=system.exit_copy,
        ni_capacity=system.ni_capacity, poll_interval=poll_interval,
        context_mode=context_mode,
        watchdog=wd, admission=adm, fault_injector=injector,
    )

    def producer(fifo, count):
        def gen():
            for i in range(count):
                yield Put(fifo, float(i))
        return gen

    def consumer(fifo, total_out):
        def gen():
            for _ in range(total_out):
                yield Get(fifo)
            drained.release(1)
        return gen

    for cfg in configs:
        name, total = cfg["name"], totals[cfg["name"]]
        out_per_block = chain.binding(name).expected_out
        prod.add_task(TaskSpec(f"feed:{name}", producer(cfg["in_fifo"], total)))
        cons.add_task(TaskSpec(f"drain:{name}",
                               consumer(cfg["out_fifo"], out_per_block * blocks)))
    prod.start()
    cons.start()

    # Conservative cap in case a configuration deadlocks; the normal exit is
    # the drain of every stream's last output, so the measurement horizon is
    # not inflated by post-completion polling.
    max_eta = max(s.block_size for s in system.streams)
    max_r = max(s.reconfigure for s in system.streams)
    per_sample = system.entry_copy + sum(a.rho + 4 for a in system.accelerators) + 30
    cap = ((max_r + max_eta * per_sample) * blocks
           * (len(system.streams) + 2) + 10_000)
    if wd is not None:
        # recovery runs legitimately take much longer: budget the retries,
        # flush settling, backoff and degradation windows on top
        per_block_recovery = (wd.retry_limit + 1) * (
            wd.default_budget + wd.slack
            + wd.settle_cycles * wd.settle_rounds + wd.backoff_cap
        )
        cap += per_block_recovery * blocks * len(system.streams) + 100_000
        if adm is not None:
            cap += adm.healthy_window * len(system.streams)
    if max_cycles is not None:
        cap = max_cycles
    done = soc.sim.process(_wait_for(drained, len(configs)))
    while not done.processed:
        nxt = soc.sim.peek()
        if nxt is None or nxt > cap:
            break
        soc.sim.step()
    if max_cycles is not None and not done.processed:
        raise SimulationStalled(_stall_diagnostic(chain, blocks, soc.sim.now))
    return SimulationRun(
        system=system, soc=soc, chain=chain, blocks=blocks,
        poll_interval=poll_interval, horizon=max(1, soc.sim.now),
        injector=injector, watchdog=wd, admission=adm,
    )


def _stall_diagnostic(chain: SharedChain, blocks: int, now: int) -> str:
    """Name what is stuck: gateways, streams and channels with residue."""
    entry, exit_gw = chain.entry, chain.exit
    current = entry._current.name if entry._current is not None else None
    active = exit_gw._active.name if exit_gw._active is not None else None
    lines = [
        f"simulation stalled at cycle {now} (max_cycles guard)",
        f"  entry gateway: current stream={current}, "
        f"idle tokens={entry.idle.count}, blocks admitted={entry.blocks_admitted}",
        f"  exit gateway: active stream={active}, "
        f"draining={exit_gw._draining}, discarded={exit_gw.discarded}",
    ]
    for name, b in chain.bindings.items():
        if b.failed:
            state = "FAILED"
        elif b.paused_at is not None:
            state = f"paused since cycle {b.paused_at}"
        elif b.blocks_done < blocks:
            state = "STALLED"
        else:
            state = "done"
        lines.append(
            f"  stream {name}: {b.blocks_done}/{blocks} blocks, "
            f"in={b.samples_in} out={b.samples_out}, "
            f"retries={b.retries}, {state}"
        )
    for ch in chain.channels:
        if ch.buffered or ch.words_in_flight:
            lines.append(
                f"  channel {ch.name}: {ch.buffered} buffered, "
                f"{ch.words_in_flight} in flight"
            )
    return "\n".join(lines)


def _wait_for(signal: Signal, units: int):
    yield signal.acquire(units)
