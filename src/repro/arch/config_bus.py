"""The accelerator configuration bus (paper Sections IV-B/IV-C).

"Each accelerator is connected to a bus to load and save its state and
configuration.  This is used to provide context switches when different data
streams are multiplexed."  The bus is a single shared resource: transfers
serialise, each moving one word per ``word_time`` cycles.  The entry-gateway
drives it during reconfiguration; the total save+restore time corresponds to
the paper's ``R_s`` (4100 cycles in the prototype, dominated by the software
save/restore loop on the MicroBlaze).
"""

from __future__ import annotations

from ..sim import Signal, SimulationError, Simulator, Tracer

__all__ = ["ConfigBus"]


class ConfigBus:
    """Serialised word-at-a-time state/configuration transport."""

    def __init__(
        self,
        sim: Simulator,
        word_time: int = 1,
        tracer: Tracer | None = None,
    ) -> None:
        if word_time < 1:
            raise SimulationError("config bus word time must be >= 1 cycle")
        self.sim = sim
        self.word_time = int(word_time)
        self.tracer = tracer
        self._mutex = Signal(sim, initial=1, name="cfgbus")
        self.words_transferred = 0
        self.transactions = 0

    def transfer(self, words: int, label: str = ""):
        """Generator: move ``words`` over the bus (blocking, serialised)."""
        if words < 0:
            raise SimulationError("cannot transfer a negative word count")
        yield self._mutex.acquire(1)
        try:
            if words:
                yield self.sim.timeout(words * self.word_time)
            self.words_transferred += words
            self.transactions += 1
            if self.tracer:
                self.tracer.log(self.sim.now, "cfgbus", "transfer",
                                words=words, label=label)
        finally:
            self._mutex.release(1)

    def transfer_cycles(self, cycles: int, label: str = ""):
        """Generator: occupy the bus for a fixed cycle count.

        Used when the caller knows the end-to-end reconfiguration time
        (the paper's measured ``R_s = 4100``) rather than a word count.
        """
        if cycles < 0:
            raise SimulationError("cannot occupy the bus for negative time")
        yield self._mutex.acquire(1)
        try:
            if cycles:
                yield self.sim.timeout(cycles)
            self.transactions += 1
            if self.tracer:
                self.tracer.log(self.sim.now, "cfgbus", "transfer_cycles",
                                cycles=cycles, label=label)
        finally:
            self._mutex.release(1)
