"""The accelerator configuration bus (paper Sections IV-B/IV-C).

"Each accelerator is connected to a bus to load and save its state and
configuration.  This is used to provide context switches when different data
streams are multiplexed."  The bus is a single shared resource: transfers
serialise, each moving one word per ``word_time`` cycles.  The entry-gateway
drives it during reconfiguration; the total save+restore time corresponds to
the paper's ``R_s`` (4100 cycles in the prototype, dominated by the software
save/restore loop on the MicroBlaze).
"""

from __future__ import annotations

from ..sim import Signal, SimulationError, Simulator, Tracer

__all__ = ["ConfigBus"]


class ConfigBus:
    """Serialised word-at-a-time state/configuration transport."""

    def __init__(
        self,
        sim: Simulator,
        word_time: int = 1,
        tracer: Tracer | None = None,
    ) -> None:
        if word_time < 1:
            raise SimulationError("config bus word time must be >= 1 cycle")
        self.sim = sim
        self.word_time = int(word_time)
        self.tracer = tracer
        self._mutex = Signal(sim, initial=1, name="cfgbus")
        self.words_transferred = 0
        self.transactions = 0

    def transfer(self, words: int, label: str = ""):
        """Move ``words`` over the bus (blocking, serialised).

        Returns a generator to drive with ``yield from``.  The size is
        validated eagerly — a zero or negative word count is a caller bug
        (it would silently occupy the bus for nothing, or never run at
        all if the generator is dropped unstarted) and raises
        :class:`ValueError` at call time.
        """
        if not isinstance(words, int) or words <= 0:
            raise ValueError(
                f"config bus transfer needs a positive word count, got {words!r}"
            )
        return self._occupy(words * self.word_time, words, "transfer", label)

    def transfer_cycles(self, cycles: int, label: str = ""):
        """Occupy the bus for a fixed cycle count (``yield from`` the result).

        Used when the caller knows the end-to-end reconfiguration time
        (the paper's measured ``R_s = 4100``) rather than a word count.
        Zero/negative durations raise :class:`ValueError` eagerly, like
        :meth:`transfer`.
        """
        if not isinstance(cycles, int) or cycles <= 0:
            raise ValueError(
                f"config bus occupancy needs a positive cycle count, got {cycles!r}"
            )
        return self._occupy(cycles, 0, "transfer_cycles", label)

    def _occupy(self, cycles: int, words: int, kind: str, label: str):
        yield self._mutex.acquire(1)
        try:
            yield self.sim.timeout(cycles)
            self.words_transferred += words
            self.transactions += 1
            if self.tracer:
                detail = {"words": words} if words else {"cycles": cycles}
                self.tracer.log(self.sim.now, "cfgbus", kind,
                                label=label, **detail)
        finally:
            self._mutex.release(1)
