"""Processor tiles (paper Section IV-A).

A processor tile bundles a MicroBlaze-class core (modelled by a
:class:`~repro.arch.scheduler.BudgetScheduler`), its ring station, and the
software C-FIFO endpoints of the tasks it hosts.  Caches/local memories are
abstracted: task compute times are given directly in cycles, matching how
the paper's analysis consumes worst-case execution times.
"""

from __future__ import annotations

from ..sim import Simulator, Tracer
from .cfifo import CFifo
from .ring import DualRing
from .scheduler import BudgetScheduler, TaskSpec

__all__ = ["ProcessorTile"]


class ProcessorTile:
    """A RISC core + scheduler attached to a ring station."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        station: int,
        ring: DualRing,
        quantum: int = 64,
        tracer: Tracer | None = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.station = station
        self.ring = ring
        self.tracer = tracer
        self.scheduler = BudgetScheduler(sim, name=f"{name}.cpu", quantum=quantum,
                                         tracer=tracer)
        self._fifos: list[CFifo] = []

    def add_task(self, spec: TaskSpec) -> None:
        """Register a task on this tile's scheduler."""
        self.scheduler.add_task(spec)

    def start(self) -> None:
        """Boot the tile (start its scheduler)."""
        self.scheduler.start()

    def fifo_to(
        self,
        other: "ProcessorTile | int",
        capacity: int,
        name: str | None = None,
    ) -> CFifo:
        """Create a software C-FIFO from this tile to another tile/station."""
        dst = other.station if isinstance(other, ProcessorTile) else int(other)
        fifo = CFifo(
            self.sim, self.ring, self.station, dst, capacity,
            name=name or f"{self.name}->#{dst}", tracer=self.tracer,
        )
        self._fifos.append(fifo)
        return fifo

    @property
    def utilization_cycles(self) -> int:
        """Cycles this tile's core spent executing task code."""
        return self.scheduler.busy_cycles
