"""Cycle-level model of the paper's heterogeneous MPSoC architecture.

Substitutes the Virtex-6 prototype: dual-ring interconnect with posted
writes, credit-based hardware FIFOs, C-FIFO software FIFOs, processor tiles
under a budget scheduler, stallable accelerator tiles, a configuration bus,
and the entry/exit-gateway pair that multiplexes streams over shared
accelerators.
"""

from .accelerator_tile import AcceleratorTile
from .cfifo import CFifo
from .config_bus import ConfigBus
from .gateway import EntryGateway, ExitGateway, GatewayError, StreamBinding
from .harness import SimulationRun, SimulationStalled, simulate_system
from .ni import HardwareFifoChannel
from .processor import ProcessorTile
from .program import BuiltProgram, ProgramError, StreamProgram
from .reconfig import ModeTransition, ReconfigurationManager
from .ring import DualRing, RingError
from .scheduler import BudgetScheduler, Compute, Get, Put, Sleep, TaskSpec
from .system import MPSoC, SharedChain

__all__ = [
    "AcceleratorTile",
    "BudgetScheduler",
    "BuiltProgram",
    "CFifo",
    "ProgramError",
    "StreamProgram",
    "Compute",
    "ConfigBus",
    "DualRing",
    "EntryGateway",
    "ExitGateway",
    "GatewayError",
    "Get",
    "HardwareFifoChannel",
    "MPSoC",
    "ModeTransition",
    "ProcessorTile",
    "Put",
    "ReconfigurationManager",
    "RingError",
    "SharedChain",
    "SimulationRun",
    "SimulationStalled",
    "Sleep",
    "StreamBinding",
    "TaskSpec",
    "simulate_system",
]
