"""Network interfaces with credit-based hardware flow control.

Accelerator tiles communicate through hardware FIFOs over the ring: the
producer-side NI holds a **credit counter** initialised to the consumer-side
buffer capacity; each data flit spends one credit, and each word the consumer
pops returns one credit over the credit ring (Section IV-A/B: "To support
hardware FIFO communication we use a credit based flow control mechanism …
implemented with a second ring for the communication of credits in the
opposite direction as the data").

The ``α1 = α2 = 2``-token NI buffers of the paper's CSDF model (Fig. 5) are
exactly the ``capacity`` of these channels.

Both the data flit posted by :meth:`HardwareFifoChannel.send` and the credit
flit returned by :meth:`HardwareFifoChannel.recv` are single posted writes,
so they ride the ring's fused fast path (DESIGN.md §7) whenever their route
is unobstructed — no per-hop generator, and the in-flight accounting
(:attr:`~HardwareFifoChannel.words_in_flight` /
:attr:`~HardwareFifoChannel.credits_in_flight`) the gateway's quiescence and
repair logic relies on stays exact because delivery side effects run at the
same cycle on either path.  Per-channel take rates are tracked in
:attr:`~HardwareFifoChannel.flits_fast` / :attr:`~HardwareFifoChannel
.flits_slow`.
"""

from __future__ import annotations

from typing import Any

from ..sim import FifoQueue, Signal, SimulationError, Simulator, Tracer
from .ring import DualRing

__all__ = ["HardwareFifoChannel"]


class HardwareFifoChannel:
    """A credit-flow-controlled stream between two ring stations."""

    def __init__(
        self,
        sim: Simulator,
        ring: DualRing,
        src_station: int,
        dst_station: int,
        capacity: int = 2,
        name: str = "hwfifo",
        tracer: Tracer | None = None,
    ) -> None:
        if capacity < 1:
            raise SimulationError("hardware FIFO needs capacity >= 1")
        self.sim = sim
        self.ring = ring
        self.src = src_station
        self.dst = dst_station
        self.name = name
        self.capacity = int(capacity)
        self.tracer = tracer
        self._credits = Signal(sim, initial=capacity, name=f"{name}.credits")
        self._buffer = FifoQueue(sim, capacity, name=f"{name}.buf")
        self.words_sent = 0
        self.words_received = 0
        #: data flits posted but not yet landed in the consumer buffer
        self.words_in_flight = 0
        #: credit-return flits posted but not yet landed at the producer
        self.credits_in_flight = 0
        #: this channel's flits that took the ring fast path / generator path
        self.flits_fast = 0
        self.flits_slow = 0
        ring.clients.append(self)

    def _counted_post(self, src: int, dst: int, payload: Any, ring_dir: str,
                      on_delivery, events: bool = True):
        """``ring.post`` plus this channel's own fast/slow flit attribution."""
        before = self.ring.flits_fast[ring_dir]
        out = self.ring.post(src, dst, payload, ring=ring_dir,
                             on_delivery=on_delivery, events=events)
        if self.ring.flits_fast[ring_dir] > before:
            self.flits_fast += 1
        else:
            self.flits_slow += 1
        return out

    # -- producer side ------------------------------------------------------
    def send(self, word: Any):
        """Generator: block for a credit, then post the data flit.

        The producer resumes as soon as the ring accepts (posted write);
        the word lands in the consumer buffer when the flit is delivered.
        Credit accounting guarantees the buffer never overflows.
        """
        yield self._credits.acquire(1)
        self.words_in_flight += 1
        accepted, _delivered = self._counted_post(
            self.src, self.dst, word, DualRing.DATA, self._arrive
        )
        yield accepted
        self.words_sent += 1
        if self.tracer:
            self.tracer.log(self.sim.now, self.name, "send", word=word)

    def _arrive(self, word: Any) -> None:
        self.words_in_flight -= 1
        if not self._buffer.try_put(word):
            raise SimulationError(
                f"{self.name}: buffer overflow despite credits — protocol bug"
            )

    def try_send_ready(self) -> bool:
        """Non-blocking check: is a credit available right now?"""
        return self._credits.count > 0

    # -- consumer side ---------------------------------------------------
    def recv(self):
        """Generator: pop the next word, then return a credit to the producer."""
        word = yield self._buffer.get()
        self.words_received += 1
        self._return_credit()
        if self.tracer:
            self.tracer.log(self.sim.now, self.name, "recv", word=word)
        return word

    def try_recv(self) -> tuple[bool, Any]:
        """Non-blocking receive: ``(ok, word)``; returns the credit on success.

        Used by the exit gateway while draining an aborted block — stale
        words must be consumed (and their credits returned) without blocking.
        """
        ok, word = self._buffer.try_get()
        if not ok:
            return False, None
        self.words_received += 1
        self._return_credit()
        if self.tracer:
            self.tracer.log(self.sim.now, self.name, "recv", word=word)
        return True, word

    def _return_credit(self) -> None:
        self.credits_in_flight += 1
        self._counted_post(
            self.dst, self.src, None, DualRing.CREDIT, self._credit_lands,
            events=False,
        )

    def _credit_lands(self, _payload: Any) -> None:
        self.credits_in_flight -= 1
        self._credits.release(1)

    @property
    def credits(self) -> int:
        """Send credits currently held by the producer side."""
        return self._credits.count

    def repair(self, data_drops: int = 0, credit_drops: int = 0) -> int:
        """Restore credits lost to faults or aborted transfers (recovery).

        ``data_drops`` / ``credit_drops`` are flits confirmed dropped by the
        fault injector; they are removed from the in-flight accounting, and
        whatever the credit-conservation invariant
        (``credits + buffered + in-flight = capacity``) still finds missing
        — e.g. a waiter withdrawn mid-handshake during a watchdog flush —
        is released back to the producer.  Returns the credits restored.
        Only sound while the channel is quiescent (no live transfer racing
        the accounting), i.e. from the entry gateway's recovery path.
        """
        self.words_in_flight -= min(data_drops, self.words_in_flight)
        self.credits_in_flight -= min(credit_drops, self.credits_in_flight)
        missing = (
            self.capacity
            - self._credits.count
            - self._buffer.level
            - self.words_in_flight
            - self.credits_in_flight
        )
        if missing > 0:
            self._credits.release(missing)
            return missing
        return 0

    @property
    def buffered(self) -> int:
        """Words currently waiting in the consumer-side buffer."""
        return self._buffer.level

    def fastpath_stats(self) -> dict[str, Any]:
        """Fast-path take rate for this channel's data + credit flits."""
        flits = self.flits_fast + self.flits_slow
        return {
            "flits_fast": self.flits_fast,
            "flits_slow": self.flits_slow,
            "flit_take_rate": (self.flits_fast / flits) if flits else 0.0,
        }
