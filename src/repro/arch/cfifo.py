"""C-FIFO software FIFOs (Gangwal et al. [12]; paper Section IV-A).

Software FIFO communication between processing tiles uses shared-memory
FIFOs with the C-FIFO synchronisation scheme: the producer owns the write
pointer and keeps a *local copy* of the read pointer; the consumer owns the
read pointer and a local copy of the write pointer.  Data and pointer
updates travel as posted writes over the data ring; because the ring
delivers flits between one (src, dst) pair in order, a pointer update never
overtakes the data it covers.

Timing model:

* ``put`` blocks while the producer's local space view is zero; it then
  writes the word and the write-pointer update into the consumer's memory
  (two posted flits; the producer continues after ring acceptance),
* ``get`` blocks while the consumer's local fill view is zero; it then reads
  the word from local memory (free) and posts the read-pointer update back,
  which replenishes the producer's space view on arrival.

This matches the dataflow abstraction used in the analysis: space is
released to the producer only after consumption, and availability reaches
the consumer only after the (ring-delayed) write-pointer update.

Fused put (DESIGN.md §7): once the producer's space grant fires — the
exact dispatch position where the unfused code would post the data flit —
and no fault injector is attached, :meth:`CFifo.put` offers the data +
write-pointer posted writes to the ring as one precompiled chain
(:meth:`~repro.arch.ring.DualRing.post_chain`).  When the ring takes it,
the producer parks on a single event (the wptr acceptance) instead of
resuming once per flit, the data flit spawns no transit generator, and the
wptr flit is relayed at the data flit's acceptance instant exactly as the
unfused code would have posted it (fast or slow on its own merits).
Timing is identical to the unfused path; the eligibility
counters (:attr:`CFifo.fused_puts` / :attr:`CFifo.slow_puts`, per-flit
:attr:`CFifo.flits_fast` / :attr:`CFifo.flits_slow`) surface the take rate
through :mod:`repro.sim.metrics`.  The read-pointer update posted by
:meth:`CFifo.get` is a single flit, fused by the ring itself when
eligible.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from ..sim import Signal, SimulationError, Simulator, Tracer
from ..sim.trace import Kind
from .ring import DualRing

__all__ = ["CFifo"]


class CFifo:
    """A software FIFO between two ring stations with C-FIFO synchronisation."""

    def __init__(
        self,
        sim: Simulator,
        ring: DualRing,
        producer_station: int,
        consumer_station: int,
        capacity: int,
        name: str = "cfifo",
        tracer: Tracer | None = None,
    ) -> None:
        if capacity < 1:
            raise SimulationError("C-FIFO needs capacity >= 1")
        self.sim = sim
        self.ring = ring
        self.producer = producer_station
        self.consumer = consumer_station
        self.capacity = int(capacity)
        self.name = name
        self.tracer = tracer
        # producer's local view of free space (read-pointer copy)
        self._space = Signal(sim, initial=capacity, name=f"{name}.space")
        # consumer's local view of available words (write-pointer copy)
        self._avail = Signal(sim, initial=0, name=f"{name}.avail")
        self._memory: deque[Any] = deque()  # consumer-side buffer contents
        # hot-path handles: put/get run once per word, so the bound methods
        # and the constant wptr chain entry are hoisted out of them
        self._append = self._memory.append
        self._wptr_entry = (ring.hop_latency, None, self._release_avail)
        self.words_put = 0
        self.words_got = 0
        #: puts whose data+wptr flits were fused into one precompiled chain
        self.fused_puts = 0
        #: puts that went through the per-flit path (blocked, faulted, ...)
        self.slow_puts = 0
        #: this FIFO's flits that took the ring fast path / generator path
        self.flits_fast = 0
        self.flits_slow = 0
        ring.clients.append(self)
        #: maximum number of claimed slots observed (buffer high-water mark);
        #: claimed = capacity − producer space view, so it covers words both
        #: in flight on the ring and resident in the consumer's memory.
        self.high_water = 0
        #: optional :class:`repro.sim.faults.FaultInjector` pointer-loss hook
        self.fault_injector = None
        #: pointer updates lost to injected faults, repaid by :meth:`resync`
        self.lost_space = 0
        self.lost_avail = 0

    # -- internal helpers --------------------------------------------------
    def _release_avail(self, _payload: Any) -> None:
        self._avail.release(1)

    def _release_space(self, _payload: Any) -> None:
        self._space.release(1)

    def _counted_post(self, src: int, dst: int, payload: Any, on_delivery,
                      events: bool = True):
        """``ring.post`` plus this FIFO's own fast/slow flit attribution."""
        before = self.ring.flits_fast[DualRing.DATA]
        out = self.ring.post(src, dst, payload, ring=DualRing.DATA,
                             on_delivery=on_delivery, events=events)
        if self.ring.flits_fast[DualRing.DATA] > before:
            self.flits_fast += 1
        else:
            self.flits_slow += 1
        return out

    # -- producer ---------------------------------------------------------
    def put(self, word: Any):
        """Generator: claim space, post data + write-pointer update.

        When the ring accepts both flits on its fast path, the two posted
        writes are fused into one precompiled chain and this generator
        parks on a single event (the wptr acceptance); timing and side
        effects are identical to the per-flit path below.  The fusion
        decision is made *at the space grant's dispatch position* — exactly
        where the unfused code posts the data flit — so injection order
        against competing traffic is unchanged.
        """
        yield self._space.acquire(1)
        claimed = self.capacity - self._space.count
        if claimed > self.high_water:
            self.high_water = claimed
        if self.fault_injector is None:
            chain = self.ring.post_chain(
                self.producer, self.consumer,
                ((0, word, self._append), self._wptr_entry),
                client=self,
            )
            if chain is not None:
                self.fused_puts += 1
                yield chain[1][0]  # wptr acceptance: the producer's resume
                self.words_put += 1
                if self.tracer:
                    self.tracer.log(self.sim.now, self.name, Kind.PUT, word=word)
                return
        self.slow_puts += 1
        # data word (posted write into the consumer's FIFO memory)
        accepted, _ = self._counted_post(
            self.producer, self.consumer, word, self._append,
        )
        yield accepted
        injector = self.fault_injector
        if injector is not None and injector.cfifo_ptr_loss(self.name, "write"):
            # the wptr flit is lost before injection: the consumer never
            # learns about this word until a resync repairs the view
            self.lost_avail += 1
        else:
            # write-pointer update; availability becomes visible on delivery
            accepted2, _ = self._counted_post(
                self.producer, self.consumer, None, self._release_avail,
            )
            yield accepted2
        self.words_put += 1
        if self.tracer:
            self.tracer.log(self.sim.now, self.name, Kind.PUT, word=word)

    @property
    def producer_space(self) -> int:
        """Free space as currently visible to the producer."""
        return self._space.count

    # -- consumer ---------------------------------------------------------
    def get(self):
        """Generator: wait for a visible word, read it, post the rptr update."""
        yield self._avail.acquire(1)
        while not self._memory:
            if self.fault_injector is None:
                raise SimulationError(f"{self.name}: pointer/data ordering violated")
            # under fault injection a resync can make availability visible
            # slightly before a delayed data flit lands; spin until it does
            yield self.sim.timeout(1)
        word = self._memory.popleft()
        self.words_got += 1
        injector = self.fault_injector
        if injector is not None and injector.cfifo_ptr_loss(self.name, "read"):
            # the rptr flit is lost: the producer's space view leaks a slot
            # until a resync repairs it
            self.lost_space += 1
        else:
            # read-pointer update replenishes producer space on arrival
            self._counted_post(
                self.consumer, self.producer, None, self._release_space,
                events=False,
            )
        if self.tracer:
            self.tracer.log(self.sim.now, self.name, Kind.GET, word=word)
        return word

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get: ``(ok, word)``.

        Behaves like :meth:`get` when a word is visible *and* resident;
        returns ``(False, None)`` otherwise.  The entry gateway's guarded
        (watchdog) path uses this so an interrupted fetch can never strand
        a half-consumed availability token.
        """
        if self._avail.count < 1 or not self._memory:
            return False, None
        if not self._avail.try_acquire(1):
            return False, None
        word = self._memory.popleft()
        self.words_got += 1
        injector = self.fault_injector
        if injector is not None and injector.cfifo_ptr_loss(self.name, "read"):
            self.lost_space += 1
        else:
            self._counted_post(
                self.consumer, self.producer, None, self._release_space,
                events=False,
            )
        if self.tracer:
            self.tracer.log(self.sim.now, self.name, Kind.GET, word=word)
        return True, word

    @property
    def consumer_available(self) -> int:
        """Words currently visible to the consumer."""
        return self._avail.count

    def resync(self) -> tuple[int, int]:
        """Repay pointer updates lost to injected faults.

        Models a recovery-time pointer resynchronisation (producer and
        consumer re-exchange their true pointers).  Returns
        ``(space_restored, avail_restored)``.
        """
        space, avail = self.lost_space, self.lost_avail
        if space:
            self._space.release(space)
        if avail:
            self._avail.release(avail)
        self.lost_space = 0
        self.lost_avail = 0
        return space, avail

    def level_debug(self) -> dict[str, int]:
        """Snapshot of the distributed state (for tests/diagnostics)."""
        return {
            "space": self._space.count,
            "avail": self._avail.count,
            "memory": len(self._memory),
            "put": self.words_put,
            "got": self.words_got,
            "high_water": self.high_water,
            "lost_space": self.lost_space,
            "lost_avail": self.lost_avail,
        }

    def fastpath_stats(self) -> dict[str, Any]:
        """Fast-path take rates for this FIFO's puts and flits."""
        puts = self.fused_puts + self.slow_puts
        flits = self.flits_fast + self.flits_slow
        return {
            "fused_puts": self.fused_puts,
            "slow_puts": self.slow_puts,
            "put_take_rate": (self.fused_puts / puts) if puts else 0.0,
            "flits_fast": self.flits_fast,
            "flits_slow": self.flits_slow,
            "flit_take_rate": (self.flits_fast / flits) if flits else 0.0,
        }
